//! Machine models: CPUs, interconnects and DSM event costs.
//!
//! Two presets reproduce the clusters of the paper's §4.2:
//!
//! * [`myrinet_200`] — twelve 200 MHz Pentium Pro nodes, Linux 2.2,
//!   BIP/Myrinet interconnect, 22 µs page faults.
//! * [`sci_450`] — six 450 MHz Pentium II nodes, Linux 2.2, SISCI/SCI
//!   interconnect, 12 µs page faults.
//!
//! The per-event costs that are *reported by the paper* (page fault costs,
//! processor clocks, node counts) are taken verbatim.  The remaining
//! parameters (per-operation cycle counts, network latency/bandwidth, RPC
//! software overheads, the effective cost of an in-line locality check) are
//! calibration constants chosen to land the protocol comparison inside the
//! bands the paper reports; they are documented in `EXPERIMENTS.md` and are
//! all sweepable by the ablation benchmarks.

use crate::vtime::VTime;

/// Per-operation timing model of a cluster node's processor.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuModel {
    /// Human-readable processor name.
    pub name: &'static str,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Cycles per integer ALU operation.
    pub int_alu_cycles: f64,
    /// Cycles per integer multiply.
    pub int_mul_cycles: f64,
    /// Cycles per double-precision add/sub/compare.
    pub fp_add_cycles: f64,
    /// Cycles per double-precision multiply.
    pub fp_mul_cycles: f64,
    /// Cycles per double-precision divide / square root.
    pub fp_div_cycles: f64,
    /// Cycles per (cache-hit) load, including address arithmetic.
    pub load_cycles: f64,
    /// Cycles per store.
    pub store_cycles: f64,
    /// Cycles per conditional branch.
    pub branch_cycles: f64,
    /// Cycles of call / loop-bookkeeping overhead.
    pub call_overhead_cycles: f64,
    /// Effective cycles of one in-line object-locality check, i.e. the extra
    /// work the `java_ic` protocol performs on *every* `get`/`put`
    /// (load of the page-table entry, compare, predicted branch).
    pub locality_check_cycles: f64,
}

impl CpuModel {
    /// Picoseconds per clock cycle.
    #[inline]
    pub fn ps_per_cycle(&self) -> f64 {
        1_000_000.0 / self.clock_mhz
    }

    /// Duration of a (possibly fractional) number of cycles.
    #[inline]
    pub fn cycles(&self, n: f64) -> VTime {
        VTime::from_ps((n * self.ps_per_cycle()).round().max(0.0) as u64)
    }

    /// Duration of one in-line locality check.
    #[inline]
    pub fn locality_check(&self) -> VTime {
        self.cycles(self.locality_check_cycles)
    }
}

/// Timing model of the cluster interconnect as seen by the PM2 RPC layer.
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkModel {
    /// Interconnect / protocol name (e.g. "BIP/Myrinet").
    pub name: &'static str,
    /// One-way wire + driver latency for a minimal message.
    pub latency: VTime,
    /// Sustained bandwidth in MB/s for the payload portion of a message.
    pub bandwidth_mb_per_s: f64,
    /// Sender-side software overhead per message (marshalling, trap).
    pub send_overhead: VTime,
    /// Receiver-side software overhead per message (handler dispatch).
    pub recv_overhead: VTime,
}

impl NetworkModel {
    /// Time to push `bytes` of payload onto the wire at the sustained
    /// bandwidth (latency and per-message overheads are charged separately).
    #[inline]
    pub fn transfer(&self, bytes: u64) -> VTime {
        if bytes == 0 {
            return VTime::ZERO;
        }
        let ns = bytes as f64 / (self.bandwidth_mb_per_s * 1e6) * 1e9;
        VTime::from_ns_f64(ns)
    }

    /// One-way time for a message with `bytes` of payload, including the
    /// sender and receiver software overheads.
    #[inline]
    pub fn one_way(&self, bytes: u64) -> VTime {
        self.send_overhead + self.latency + self.transfer(bytes) + self.recv_overhead
    }
}

/// Costs of the DSM-specific events that distinguish the two protocols.
#[derive(Clone, Debug, PartialEq)]
pub struct DsmCostModel {
    /// Cost of taking a page fault (trap, signal delivery, handler entry) —
    /// reported by the paper: 22 µs on the Myrinet nodes, 12 µs on the SCI
    /// nodes.
    pub page_fault: VTime,
    /// Cost of one `mprotect` system call.
    pub mprotect_call: VTime,
    /// Requester-side protocol software per page request (cycles).
    pub protocol_request_cycles: f64,
    /// Home-node handler software per page request (cycles), excluding the
    /// page copy itself.
    pub protocol_server_cycles: f64,
    /// Home-node cycles to copy one 8-byte slot when servicing a page fetch.
    pub page_copy_cycles_per_slot: f64,
    /// Home-node cycles to apply one modified slot from a diff message.
    pub diff_apply_cycles_per_slot: f64,
    /// Requester-side cycles to record one modified slot into a diff.
    pub diff_record_cycles_per_slot: f64,
    /// Cycles to enter/exit a monitor that is local to the node.
    pub monitor_local_cycles: f64,
    /// Cycles of bookkeeping when invalidating one cached page.
    pub invalidate_cycles_per_page: f64,
    /// Cycles of bookkeeping per barrier episode (in addition to monitor
    /// costs and waiting).
    pub barrier_cycles: f64,
    /// Cycles charged on the parent for creating a thread, and on the child
    /// before it starts running (remote creation additionally pays an RPC).
    pub thread_create_cycles: f64,
    /// Cycles of bookkeeping when `java_ad` flips one page between the
    /// check-based and the protection-based detection technique.
    pub protocol_switch_cycles: f64,
    /// Requester- and home-side marshalling cycles per *extra* page carried
    /// by a batched page-fetch request (the first page is covered by the
    /// ordinary per-request protocol cycles).
    pub batch_page_cycles: f64,
    /// Requester- and home-side marshalling cycles per *extra* page carried
    /// by a batched diff-flush RPC (the first page is covered by the
    /// ordinary per-request protocol cycles).
    pub batch_flush_cycles: f64,
    /// Home-side cycles to consult the prefetch directory and marshal one
    /// hint entry onto a fetch reply (the hint bytes themselves are charged
    /// on the wire like any other reply payload).
    pub hint_entry_cycles: f64,
    /// Survivor-side cycles to re-elect a home and re-install one page after
    /// a node failure (quorum comparison, promotion bookkeeping); the page
    /// bytes shipped to the new home are charged on the wire separately.
    pub resync_page_cycles: f64,
    /// Leader-side cycles to open one upstream relay cycle on behalf of a
    /// node group (request re-marshalling, relay-table bookkeeping); the
    /// upstream wire legs themselves are charged like any other message.
    pub group_relay_cycles: f64,
}

/// A homogeneous cluster node: CPU + NIC + DSM event costs.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    /// Cluster name used in reports (e.g. "200MHz/Myrinet").
    pub name: &'static str,
    /// Processor model.
    pub cpu: CpuModel,
    /// Interconnect model.
    pub net: NetworkModel,
    /// DSM event costs.
    pub dsm: DsmCostModel,
}

/// A cluster description: machine model plus the node count available in the
/// paper's testbed.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Per-node machine model (the clusters are homogeneous).
    pub machine: MachineModel,
    /// Number of nodes in the physical cluster (12 for Myrinet, 6 for SCI).
    pub max_nodes: usize,
}

impl ClusterSpec {
    /// Short label used in figures ("200MHz/Myrinet", "450MHz/SCI").
    pub fn label(&self) -> &'static str {
        self.machine.name
    }
}

/// The paper's first cluster: twelve 200 MHz Pentium Pro machines on
/// BIP/Myrinet (§4.2).  Page-fault cost of 22 µs is the value reported in
/// the paper.
pub fn myrinet_200() -> ClusterSpec {
    ClusterSpec {
        machine: MachineModel {
            name: "200MHz/Myrinet",
            cpu: CpuModel {
                name: "Pentium Pro 200MHz",
                clock_mhz: 200.0,
                int_alu_cycles: 1.0,
                int_mul_cycles: 4.0,
                fp_add_cycles: 3.0,
                fp_mul_cycles: 5.0,
                fp_div_cycles: 32.0,
                load_cycles: 2.0,
                store_cycles: 1.5,
                branch_cycles: 2.0,
                call_overhead_cycles: 6.0,
                // Calibration: on the in-order-ish Pentium Pro the generated
                // check (load entry, mask, compare, branch) does not overlap
                // with the surrounding code.
                locality_check_cycles: 6.0,
            },
            net: NetworkModel {
                name: "BIP/Myrinet",
                latency: VTime::from_us(9),
                bandwidth_mb_per_s: 125.0,
                send_overhead: VTime::from_us(3),
                recv_overhead: VTime::from_us(3),
            },
            dsm: DsmCostModel {
                page_fault: VTime::from_us(22),
                mprotect_call: VTime::from_us(10),
                protocol_request_cycles: 450.0,
                protocol_server_cycles: 600.0,
                page_copy_cycles_per_slot: 1.5,
                diff_apply_cycles_per_slot: 3.0,
                diff_record_cycles_per_slot: 2.0,
                monitor_local_cycles: 120.0,
                invalidate_cycles_per_page: 12.0,
                barrier_cycles: 200.0,
                thread_create_cycles: 2_000.0,
                protocol_switch_cycles: 40.0,
                batch_page_cycles: 60.0,
                batch_flush_cycles: 50.0,
                hint_entry_cycles: 25.0,
                resync_page_cycles: 800.0,
                group_relay_cycles: 150.0,
            },
        },
        max_nodes: 12,
    }
}

/// The paper's second cluster: six 450 MHz Pentium II machines on SISCI/SCI
/// (§4.2).  Page-fault cost of 12 µs is the value reported in the paper.
pub fn sci_450() -> ClusterSpec {
    ClusterSpec {
        machine: MachineModel {
            name: "450MHz/SCI",
            cpu: CpuModel {
                name: "Pentium II 450MHz",
                clock_mhz: 450.0,
                int_alu_cycles: 0.7,
                int_mul_cycles: 2.0,
                fp_add_cycles: 1.8,
                fp_mul_cycles: 2.8,
                fp_div_cycles: 20.0,
                load_cycles: 1.2,
                store_cycles: 1.0,
                branch_cycles: 1.0,
                call_overhead_cycles: 4.0,
                // Calibration: the out-of-order Pentium II overlaps most of
                // the check with neighbouring instructions, so its effective
                // cost is much lower — this is the paper's explanation for
                // the smaller improvement on the SCI cluster (§4.3).
                locality_check_cycles: 1.6,
            },
            net: NetworkModel {
                name: "SISCI/SCI",
                latency: VTime::from_us(5),
                bandwidth_mb_per_s: 80.0,
                send_overhead: VTime::from_us(2),
                recv_overhead: VTime::from_us(2),
            },
            dsm: DsmCostModel {
                page_fault: VTime::from_us(12),
                mprotect_call: VTime::from_us(6),
                protocol_request_cycles: 450.0,
                protocol_server_cycles: 600.0,
                page_copy_cycles_per_slot: 1.5,
                diff_apply_cycles_per_slot: 3.0,
                diff_record_cycles_per_slot: 2.0,
                monitor_local_cycles: 120.0,
                invalidate_cycles_per_page: 12.0,
                barrier_cycles: 200.0,
                thread_create_cycles: 2_000.0,
                protocol_switch_cycles: 40.0,
                batch_page_cycles: 60.0,
                batch_flush_cycles: 50.0,
                hint_entry_cycles: 25.0,
                resync_page_cycles: 800.0,
                group_relay_cycles: 150.0,
            },
        },
        max_nodes: 6,
    }
}

/// All cluster presets evaluated in the paper, in figure order.
pub fn paper_clusters() -> Vec<ClusterSpec> {
    vec![myrinet_200(), sci_450()]
}

/// A widened copy of a paper cluster for scaling studies beyond the
/// physical testbed: the same per-node machine model with `max_nodes`
/// raised to at least `nodes`.  The paper presets keep their historical
/// caps (12 Myrinet / 6 SCI nodes, pinned by tests); the 4 → 64 scaling
/// sweep models "more of the same hardware" through this helper instead of
/// mutating the presets.
pub fn scaled_cluster(base: &ClusterSpec, nodes: usize) -> ClusterSpec {
    ClusterSpec {
        machine: base.machine.clone(),
        max_nodes: base.max_nodes.max(nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_reported_values() {
        let myri = myrinet_200();
        assert_eq!(myri.max_nodes, 12);
        assert_eq!(myri.machine.cpu.clock_mhz, 200.0);
        assert_eq!(myri.machine.dsm.page_fault, VTime::from_us(22));

        let sci = sci_450();
        assert_eq!(sci.max_nodes, 6);
        assert_eq!(sci.machine.cpu.clock_mhz, 450.0);
        assert_eq!(sci.machine.dsm.page_fault, VTime::from_us(12));
    }

    #[test]
    fn cycle_durations_reflect_clock_speed() {
        let myri = myrinet_200().machine.cpu;
        let sci = sci_450().machine.cpu;
        assert_eq!(myri.ps_per_cycle(), 5000.0);
        assert!((sci.ps_per_cycle() - 2222.222).abs() < 0.5);
        assert_eq!(myri.cycles(1.0), VTime::from_ns(5));
        assert!(myri.cycles(10.0) > sci.cycles(10.0));
        assert_eq!(myri.cycles(-3.0), VTime::ZERO);
    }

    #[test]
    fn locality_check_is_cheaper_on_the_faster_cpu() {
        // Both in cycles and (a fortiori) in absolute time, matching the
        // paper's explanation for the smaller SCI improvement.
        let myri = myrinet_200().machine.cpu;
        let sci = sci_450().machine.cpu;
        assert!(myri.locality_check_cycles > sci.locality_check_cycles);
        assert!(myri.locality_check() > sci.locality_check());
    }

    #[test]
    fn network_transfer_scales_with_size_and_bandwidth() {
        let net = myrinet_200().machine.net;
        assert_eq!(net.transfer(0), VTime::ZERO);
        let one_page = net.transfer(4096);
        let two_pages = net.transfer(8192);
        assert!(two_pages >= one_page.times(2) - VTime::from_ns(1));
        assert!(two_pages <= one_page.times(2) + VTime::from_ns(1));
        // 4096 bytes at 125 MB/s is ~32.8 us.
        assert!(one_page > VTime::from_us(30) && one_page < VTime::from_us(36));
        // The SCI network is slower per byte here (80 MB/s).
        let sci_net = sci_450().machine.net;
        assert!(sci_net.transfer(4096) > one_page);
    }

    #[test]
    fn one_way_includes_all_components() {
        let net = sci_450().machine.net;
        let t = net.one_way(100);
        assert!(t >= net.latency + net.send_overhead + net.recv_overhead);
        assert_eq!(
            t,
            net.send_overhead + net.latency + net.transfer(100) + net.recv_overhead
        );
    }

    #[test]
    fn scaled_cluster_widens_but_never_narrows() {
        let wide = scaled_cluster(&myrinet_200(), 64);
        assert_eq!(wide.max_nodes, 64);
        assert_eq!(wide.machine, myrinet_200().machine);
        // Asking for fewer nodes than the preset has keeps the preset cap.
        assert_eq!(scaled_cluster(&sci_450(), 2).max_nodes, 6);
    }

    #[test]
    fn paper_clusters_returns_both_presets() {
        let all = paper_clusters();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].label(), "200MHz/Myrinet");
        assert_eq!(all[1].label(), "450MHz/SCI");
    }

    #[test]
    fn page_fault_dearer_than_mprotect_on_both_clusters() {
        for spec in paper_clusters() {
            assert!(spec.machine.dsm.page_fault >= spec.machine.dsm.mprotect_call);
        }
    }
}
