//! Symbolic operation costs.
//!
//! The 2001 system compiled Java bytecode to C and then to native code, so
//! the per-iteration cost of an application kernel was determined by the
//! instruction mix the C compiler emitted for it.  The reproduction keeps the
//! same structure: each application expresses its inner-loop body as an
//! [`OpCounts`] instruction mix, and the machine's [`CpuModel`]
//! (see [`crate::machine`]) converts that mix into a virtual duration once,
//! before the loop runs.  This is how the paper's central observation — that
//! the benefit of removing in-line checks depends on the ratio of check cost
//! to the *rest* of the computation (§4.3) — enters the model.

use crate::machine::{CpuModel, MachineModel};
use crate::vtime::VTime;

/// A class of dynamic operation in an application kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer ALU operation (add, sub, compare, shift, logical).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Double-precision floating-point add/sub/compare.
    FpAdd,
    /// Double-precision floating-point multiply.
    FpMul,
    /// Double-precision floating-point divide or square root.
    FpDiv,
    /// Memory load that hits in cache (address arithmetic included).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Method-call / loop bookkeeping overhead.
    CallOverhead,
}

/// All operation classes, in a fixed order (used for tabular reporting).
pub const ALL_OPS: [Op; 9] = [
    Op::IntAlu,
    Op::IntMul,
    Op::FpAdd,
    Op::FpMul,
    Op::FpDiv,
    Op::Load,
    Op::Store,
    Op::Branch,
    Op::CallOverhead,
];

/// An instruction mix: how many operations of each class one execution of a
/// kernel body performs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpCounts {
    counts: [f64; 9],
}

impl OpCounts {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` operations of class `op` (builder style).
    pub fn with(mut self, op: Op, n: f64) -> Self {
        self.add(op, n);
        self
    }

    /// Add `n` operations of class `op`.
    pub fn add(&mut self, op: Op, n: f64) {
        self.counts[Self::index(op)] += n;
    }

    /// Number of operations of class `op` in the mix.
    pub fn count(&self, op: Op) -> f64 {
        self.counts[Self::index(op)]
    }

    /// Total number of operations in the mix.
    pub fn total_ops(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }

    /// Scale the whole mix by a factor (e.g. per-element mix × elements).
    pub fn scaled(&self, factor: f64) -> OpCounts {
        let mut out = self.clone();
        for c in &mut out.counts {
            *c *= factor;
        }
        out
    }

    fn index(op: Op) -> usize {
        match op {
            Op::IntAlu => 0,
            Op::IntMul => 1,
            Op::FpAdd => 2,
            Op::FpMul => 3,
            Op::FpDiv => 4,
            Op::Load => 5,
            Op::Store => 6,
            Op::Branch => 7,
            Op::CallOverhead => 8,
        }
    }
}

/// A pre-computed duration for one execution of a kernel body on a specific
/// CPU, produced by [`CpuModel::estimate`].
///
/// Kernels compute this once outside their hot loop and then charge it per
/// iteration, which keeps the accounting overhead of the harness negligible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkEstimate {
    per_iteration: VTime,
}

impl WorkEstimate {
    /// Build an estimate directly from a duration (escape hatch for
    /// calibration experiments and tests).
    pub fn from_duration(per_iteration: VTime) -> Self {
        WorkEstimate { per_iteration }
    }

    /// Duration of a single execution of the kernel body.
    #[inline]
    pub fn per_iteration(&self) -> VTime {
        self.per_iteration
    }

    /// Duration of `n` executions of the kernel body.
    #[inline]
    pub fn for_iterations(&self, n: u64) -> VTime {
        self.per_iteration.times(n)
    }
}

impl CpuModel {
    /// Cycles consumed by one operation of class `op`.
    pub fn op_cycles(&self, op: Op) -> f64 {
        match op {
            Op::IntAlu => self.int_alu_cycles,
            Op::IntMul => self.int_mul_cycles,
            Op::FpAdd => self.fp_add_cycles,
            Op::FpMul => self.fp_mul_cycles,
            Op::FpDiv => self.fp_div_cycles,
            Op::Load => self.load_cycles,
            Op::Store => self.store_cycles,
            Op::Branch => self.branch_cycles,
            Op::CallOverhead => self.call_overhead_cycles,
        }
    }

    /// Total cycles for an instruction mix.
    pub fn cycles_for(&self, mix: &OpCounts) -> f64 {
        ALL_OPS
            .iter()
            .map(|&op| self.op_cycles(op) * mix.count(op))
            .sum()
    }

    /// Duration of an instruction mix on this CPU.
    pub fn duration_for(&self, mix: &OpCounts) -> VTime {
        self.cycles(self.cycles_for(mix))
    }

    /// Pre-compute a per-iteration [`WorkEstimate`] for a kernel body.
    pub fn estimate(&self, mix: &OpCounts) -> WorkEstimate {
        WorkEstimate {
            per_iteration: self.duration_for(mix),
        }
    }
}

impl MachineModel {
    /// Break-even accesses-per-epoch between the two detection techniques
    /// for one cached page: the smallest `n` for which `n` in-line checks
    /// cost more than one page fault plus the `mprotect` that re-opens the
    /// page, i.e. `n* = ⌈(t_fault + t_mprotect) / t_check⌉`.
    ///
    /// This is the pivot of the `java_ad` per-page state machine: pages that
    /// see more than `n*` accesses per invalidation epoch are cheaper under
    /// page protection, pages below it are cheaper under in-line checks.
    pub fn adaptive_break_even(&self) -> u64 {
        let check_ps = self.cpu.locality_check().as_ps().max(1);
        let miss_ps = (self.dsm.page_fault + self.dsm.mprotect_call).as_ps();
        miss_ps.div_ceil(check_ps).max(1)
    }

    /// Duration of one `java_ad` detection-mode switch on a page.
    pub fn protocol_switch(&self) -> VTime {
        self.cpu.cycles(self.dsm.protocol_switch_cycles)
    }

    /// Requester-side marshalling overhead of a batched page fetch carrying
    /// `extra` pages beyond the demanded one.
    pub fn batch_request_overhead(&self, extra: u64) -> VTime {
        self.cpu.cycles(self.dsm.batch_page_cycles * extra as f64)
    }

    /// Requester-side marshalling overhead of a batched diff flush carrying
    /// `extra` pages beyond the first one.
    pub fn batch_flush_overhead(&self, extra: u64) -> VTime {
        self.cpu.cycles(self.dsm.batch_flush_cycles * extra as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::myrinet_200;

    #[test]
    fn op_counts_builder_accumulates() {
        let mix = OpCounts::new()
            .with(Op::FpAdd, 3.0)
            .with(Op::FpMul, 1.0)
            .with(Op::FpAdd, 1.0);
        assert_eq!(mix.count(Op::FpAdd), 4.0);
        assert_eq!(mix.count(Op::FpMul), 1.0);
        assert_eq!(mix.count(Op::FpDiv), 0.0);
        assert_eq!(mix.total_ops(), 5.0);
    }

    #[test]
    fn op_counts_merge_and_scale() {
        let a = OpCounts::new().with(Op::IntAlu, 2.0).with(Op::Load, 1.0);
        let b = OpCounts::new().with(Op::IntAlu, 1.0).with(Op::Store, 4.0);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(Op::IntAlu), 3.0);
        assert_eq!(m.count(Op::Store), 4.0);
        let s = m.scaled(2.0);
        assert_eq!(s.count(Op::IntAlu), 6.0);
        assert_eq!(s.count(Op::Load), 2.0);
    }

    #[test]
    fn cpu_converts_mix_to_cycles_and_time() {
        let cpu = myrinet_200().machine.cpu;
        let mix = OpCounts::new().with(Op::IntAlu, 10.0);
        let cycles = cpu.cycles_for(&mix);
        assert!((cycles - 10.0 * cpu.int_alu_cycles).abs() < 1e-9);
        // 200 MHz => 5 ns per cycle.
        let t = cpu.duration_for(&mix);
        assert_eq!(t.as_ps(), (cycles * 5000.0).round() as u64);
    }

    #[test]
    fn work_estimate_scales_linearly() {
        let cpu = myrinet_200().machine.cpu;
        let est = cpu.estimate(&OpCounts::new().with(Op::FpAdd, 2.0));
        assert_eq!(
            est.for_iterations(1000).as_ps(),
            est.per_iteration().as_ps() * 1000
        );
        let direct = WorkEstimate::from_duration(VTime::from_ns(7));
        assert_eq!(direct.for_iterations(3), VTime::from_ns(21));
    }

    #[test]
    fn adaptive_break_even_matches_the_cost_ratio() {
        // Myrinet: (22us fault + 10us mprotect) / (6 cycles @ 200MHz = 30ns)
        // = 32_000 / 30 ≈ 1067 accesses per epoch.
        let myri = myrinet_200().machine;
        let n = myri.adaptive_break_even();
        assert!((1000..1100).contains(&n), "myrinet break-even {n}");
        // SCI: cheaper checks push the break-even much higher.
        let sci = crate::machine::sci_450().machine;
        assert!(sci.adaptive_break_even() > n);
        // Switch and batch overheads are small but non-zero.
        assert!(myri.protocol_switch() > VTime::ZERO);
        assert_eq!(myri.batch_request_overhead(0), VTime::ZERO);
        assert!(myri.batch_request_overhead(3) > myri.batch_request_overhead(1));
    }

    #[test]
    fn fp_ops_cost_more_than_int_ops_on_both_cpus() {
        for spec in [crate::machine::myrinet_200(), crate::machine::sci_450()] {
            let cpu = spec.machine.cpu;
            assert!(cpu.op_cycles(Op::FpDiv) > cpu.op_cycles(Op::FpMul));
            assert!(cpu.op_cycles(Op::FpMul) >= cpu.op_cycles(Op::FpAdd));
            assert!(cpu.op_cycles(Op::FpAdd) > cpu.op_cycles(Op::IntAlu));
        }
    }
}
