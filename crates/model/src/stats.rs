//! Event statistics.
//!
//! Every node of the simulated cluster owns a [`NodeStats`] block of atomic
//! counters.  The DSM layer, the monitor implementation and the RPC layer
//! increment them as events happen; the benchmark harness snapshots them to
//! explain *why* one protocol beats the other (number of locality checks vs
//! number of page faults and `mprotect` calls — the quantities §4.3 of the
//! paper reasons about).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_stats {
    ($(#[$meta:meta] $field:ident),+ $(,)?) => {
        /// Atomic per-node event counters (see module docs).
        #[derive(Debug, Default)]
        pub struct NodeStats {
            $(#[$meta] pub $field: AtomicU64,)+
        }

        /// A plain-old-data snapshot of [`NodeStats`], safe to aggregate,
        /// serialise and compare.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(#[$meta] pub $field: u64,)+
        }

        impl NodeStats {
            /// Take a consistent-enough snapshot of all counters (individual
            /// counters are read atomically; cross-counter skew is acceptable
            /// because snapshots are taken when the cluster is quiescent).
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Reset every counter to zero.
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }
        }

        impl StatsSnapshot {
            /// Field-wise sum of two snapshots (for cluster-wide totals).
            pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($field: self.$field + other.$field,)+
                }
            }

            /// Iterate over `(name, value)` pairs, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }
        }
    };
}

define_stats! {
    /// In-line locality checks performed (`java_ic` only).
    locality_checks,
    /// Page faults taken (`java_pf` only).
    page_faults,
    /// `mprotect` system calls performed (`java_pf` only).
    mprotect_calls,
    /// Pages fetched from a remote home node (`loadIntoCache` misses).
    page_loads,
    /// Pages whose cached copy was discarded by `invalidateCache`.
    pages_invalidated,
    /// Cache invalidation episodes (monitor acquisitions that flushed the cache).
    cache_invalidations,
    /// Diff messages sent to home nodes by `updateMainMemory`.
    diff_messages,
    /// Modified 8-byte slots flushed to home nodes.
    diff_slots_flushed,
    /// RPC requests issued by this node.
    rpc_requests,
    /// RPC requests served by this node (as home / target).
    rpc_served,
    /// Payload bytes sent by this node (requests + diffs).
    bytes_sent,
    /// Payload bytes received by this node (replies + fetched pages).
    bytes_received,
    /// Monitor entries executed by threads of this node.
    monitor_enters,
    /// Monitor exits executed by threads of this node.
    monitor_exits,
    /// Monitor acquisitions whose monitor object lives on another node.
    remote_monitor_acquires,
    /// Barrier episodes completed by threads of this node.
    barrier_waits,
    /// Threads created on this node.
    threads_spawned,
    /// Threads migrated away from this node (extension feature).
    threads_migrated,
    /// Object-field reads performed through the DSM (`get`).
    field_reads,
    /// Object-field writes performed through the DSM (`put`).
    field_writes,
    /// Bulk slice reads performed (`read_slice` / view pins), one per call.
    bulk_reads,
    /// Bulk slice writes performed (`write_slice` / view commits), one per call.
    bulk_writes,
    /// Per-page detection-mode switches performed by `java_ad` (check ↔ protect).
    protocol_switches,
    /// Page-fetch RPCs that carried more than one page (`java_ad` batching).
    batched_fetches,
    /// Pages installed beyond the demanded page by batched fetches.
    pages_prefetched,
    /// Prefetched pages installed on history speculation alone (no bulk cover).
    pages_prefetch_speculative,
    /// Prefetched pages invalidated untouched (`java_ad` speculation throttle).
    pages_prefetch_wasted,
    /// Diff RPCs that carried more than one page (batched flushing).
    batched_flushes,
    /// Payload bytes of diff messages sent by this node.
    diff_bytes,
    /// Pages whose home migrated *to* this node (write-shared home migration).
    pages_migrated,
    /// Fetch round-trip cycles hidden behind compute by overlapped transport.
    fetch_overlap_cycles_hidden,
    /// Pages this node (as home) hinted on fetch replies (one wire entry can name a run of pages).
    hints_sent,
    /// Hint-driven split-transaction fetches issued by this node.
    hinted_fetches_issued,
    /// Hinted in-flight fetches completed by a real use (the demand miss finished an in-flight RPC).
    hinted_fetches_completed,
    /// Hinted pages invalidated with their ticket still pending (wasted hints).
    hinted_fetches_wasted,
    /// Release-time diff flushes handed to the deferred per-monitor queue instead of blocking.
    deferred_flushes,
    /// Flush round-trip cycles hidden by deferred release flushing (residual charged at next acquire).
    flush_overlap_cycles_hidden,
}

impl NodeStats {
    /// Increment a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn bump_by(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Sum a collection of snapshots into a cluster-wide total.
    pub fn total<'a, I: IntoIterator<Item = &'a StatsSnapshot>>(snapshots: I) -> StatsSnapshot {
        snapshots
            .into_iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merged(s))
    }

    /// Total DSM accesses (reads + writes).
    pub fn field_accesses(&self) -> u64 {
        self.field_reads + self.field_writes
    }

    /// Total payload bytes moved (sent + received).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = NodeStats::default();
        NodeStats::bump(&s.locality_checks);
        NodeStats::bump(&s.locality_checks);
        NodeStats::bump_by(&s.bytes_sent, 4096);
        NodeStats::bump(&s.page_faults);
        let snap = s.snapshot();
        assert_eq!(snap.locality_checks, 2);
        assert_eq!(snap.bytes_sent, 4096);
        assert_eq!(snap.page_faults, 1);
        assert_eq!(snap.mprotect_calls, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = NodeStats::default();
        NodeStats::bump_by(&s.field_reads, 10);
        NodeStats::bump_by(&s.field_writes, 5);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.field_reads, 0);
        assert_eq!(snap.field_writes, 0);
        assert_eq!(snap.field_accesses(), 0);
    }

    #[test]
    fn merged_and_total_sum_fieldwise() {
        let a = StatsSnapshot {
            page_loads: 3,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = StatsSnapshot {
            page_loads: 4,
            bytes_received: 50,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.page_loads, 7);
        assert_eq!(m.bytes_sent, 100);
        assert_eq!(m.bytes_received, 50);
        assert_eq!(m.bytes_moved(), 150);

        let t = StatsSnapshot::total([&a, &b, &m]);
        assert_eq!(t.page_loads, 14);
    }

    #[test]
    fn fields_enumeration_contains_every_counter() {
        let snap = StatsSnapshot::default();
        let names: Vec<&str> = snap.fields().iter().map(|(n, _)| *n).collect();
        for expected in [
            "locality_checks",
            "page_faults",
            "mprotect_calls",
            "page_loads",
            "diff_messages",
            "monitor_enters",
            "field_reads",
            "field_writes",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 37);
        for added in [
            "batched_flushes",
            "diff_bytes",
            "pages_migrated",
            "fetch_overlap_cycles_hidden",
            "hints_sent",
            "hinted_fetches_issued",
            "hinted_fetches_completed",
            "hinted_fetches_wasted",
            "deferred_flushes",
            "flush_overlap_cycles_hidden",
        ] {
            assert!(names.contains(&added), "missing {added}");
        }
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        use std::sync::Arc;
        let s = Arc::new(NodeStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        NodeStats::bump(&s.field_reads);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().field_reads, 40_000);
    }
}
