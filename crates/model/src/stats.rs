//! Event statistics.
//!
//! Every node of the simulated cluster owns a [`NodeStats`] block of atomic
//! counters.  The DSM layer, the monitor implementation and the RPC layer
//! increment them as events happen; the benchmark harness snapshots them to
//! explain *why* one protocol beats the other (number of locality checks vs
//! number of page faults and `mprotect` calls — the quantities §4.3 of the
//! paper reasons about).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_stats {
    ($(#[$meta:meta] $field:ident),+ $(,)?) => {
        /// Atomic per-node event counters (see module docs).
        #[derive(Debug, Default)]
        pub struct NodeStats {
            $(#[$meta] pub $field: AtomicU64,)+
        }

        /// A plain-old-data snapshot of [`NodeStats`], safe to aggregate,
        /// serialise and compare.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(#[$meta] pub $field: u64,)+
        }

        impl NodeStats {
            /// Take a consistent-enough snapshot of all counters (individual
            /// counters are read atomically; cross-counter skew is acceptable
            /// because snapshots are taken when the cluster is quiescent).
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Reset every counter to zero.
            pub fn reset(&self) {
                $(self.$field.store(0, Ordering::Relaxed);)+
            }
        }

        impl StatsSnapshot {
            /// Field-wise sum of two snapshots (for cluster-wide totals).
            pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($field: self.$field + other.$field,)+
                }
            }

            /// Iterate over `(name, value)` pairs, in declaration order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($field), self.$field),)+]
            }
        }
    };
}

define_stats! {
    /// In-line locality checks performed (`java_ic` only).
    locality_checks,
    /// Page faults taken (`java_pf` only).
    page_faults,
    /// `mprotect` system calls performed (`java_pf` only).
    mprotect_calls,
    /// Pages fetched from a remote home node (`loadIntoCache` misses).
    page_loads,
    /// Pages whose cached copy was discarded by `invalidateCache`.
    pages_invalidated,
    /// Cache invalidation episodes (monitor acquisitions that flushed the cache).
    cache_invalidations,
    /// Diff messages sent to home nodes by `updateMainMemory`.
    diff_messages,
    /// Modified 8-byte slots flushed to home nodes.
    diff_slots_flushed,
    /// RPC requests issued by this node.
    rpc_requests,
    /// RPC requests served by this node (as home / target).
    rpc_served,
    /// Payload bytes sent by this node (requests + diffs).
    bytes_sent,
    /// Payload bytes received by this node (replies + fetched pages).
    bytes_received,
    /// Monitor entries executed by threads of this node.
    monitor_enters,
    /// Monitor exits executed by threads of this node.
    monitor_exits,
    /// Monitor acquisitions whose monitor object lives on another node.
    remote_monitor_acquires,
    /// Barrier episodes completed by threads of this node.
    barrier_waits,
    /// Threads created on this node.
    threads_spawned,
    /// Threads migrated away from this node (extension feature).
    threads_migrated,
    /// Object-field reads performed through the DSM (`get`).
    field_reads,
    /// Object-field writes performed through the DSM (`put`).
    field_writes,
    /// Bulk slice reads performed (`read_slice` / view pins), one per call.
    bulk_reads,
    /// Bulk slice writes performed (`write_slice` / view commits), one per call.
    bulk_writes,
    /// Per-page detection-mode switches performed by `java_ad` (check ↔ protect).
    protocol_switches,
    /// Page-fetch RPCs that carried more than one page (`java_ad` batching).
    batched_fetches,
    /// Pages installed beyond the demanded page by batched fetches.
    pages_prefetched,
    /// Prefetched pages installed on history speculation alone (no bulk cover).
    pages_prefetch_speculative,
    /// Prefetched pages invalidated untouched (`java_ad` speculation throttle).
    pages_prefetch_wasted,
    /// Diff RPCs that carried more than one page (batched flushing).
    batched_flushes,
    /// Payload bytes of diff messages sent by this node.
    diff_bytes,
    /// Pages whose home migrated *to* this node (write-shared home migration).
    pages_migrated,
    /// Fetch round-trip cycles hidden behind compute by overlapped transport.
    fetch_overlap_cycles_hidden,
    /// Pages this node (as home) hinted on fetch replies (one wire entry can name a run of pages).
    hints_sent,
    /// Hint-driven split-transaction fetches issued by this node.
    hinted_fetches_issued,
    /// Hinted in-flight fetches completed by a real use (the demand miss finished an in-flight RPC).
    hinted_fetches_completed,
    /// Hinted pages invalidated with their ticket still pending (wasted hints).
    hinted_fetches_wasted,
    /// Abandoned hint tickets re-armed at the invalidating acquire (a fresh split-transaction fetch was issued on the spot).
    hinted_fetches_reissued,
    /// Release-time diff flushes handed to the deferred per-monitor queue instead of blocking.
    deferred_flushes,
    /// Flush round-trip cycles hidden by deferred release flushing (residual charged at next acquire).
    flush_overlap_cycles_hidden,
    /// RPC attempts re-issued after a retryable transport failure.
    rpc_retries,
    /// RPC attempts that timed out (each charged the configured rpc_timeout).
    rpc_timeouts,
    /// Request frames dropped by the fault injector before reaching the handler.
    frames_dropped_injected,
    /// Node failures this node detected and recovered from (one per failed peer).
    nodes_failed,
    /// Pages re-homed and re-synced onto a survivor after their home failed.
    pages_resynced,
    /// Serving-style operations completed by threads of this node (KV requests, vertex updates).
    serving_ops,
    /// Total modeled latency of the serving operations, in picoseconds (divide by `serving_ops` for the mean).
    serving_op_ps_total,
    /// Group-member page fetches this node (as group leader) served from its relay cache instead of forwarding upstream to the home.
    combined_fetches,
    /// Group-member diff batches this node (as group leader) coalesced into an already-open upstream relay cycle instead of a fresh home RPC.
    combined_diff_batches,
    /// Fresh upstream relay cycles this node (as group leader) opened towards homes on behalf of its group members.
    group_relay_cycles,
}

impl NodeStats {
    /// Increment a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn bump_by(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Sum a collection of snapshots into a cluster-wide total.
    pub fn total<'a, I: IntoIterator<Item = &'a StatsSnapshot>>(snapshots: I) -> StatsSnapshot {
        snapshots
            .into_iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merged(s))
    }

    /// Total DSM accesses (reads + writes).
    pub fn field_accesses(&self) -> u64 {
        self.field_reads + self.field_writes
    }

    /// Total payload bytes moved (sent + received).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One RPC service's accumulated wire-level traffic, as observed by a *real*
/// transport backend (sockets): what was actually written to and read from
/// the wire, how long the round trips took on the wall clock, and what the
/// cost model charged for the very same round trips in virtual time.
///
/// The pairing of `rtt_nanos` (measured) with `modeled_ps` (charged) is what
/// the bench harness turns into the modeled-vs-measured report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireServiceSnapshot {
    /// Index of the service in the cluster's service table.
    pub service: usize,
    /// Round trips completed (one request frame + one reply frame each).
    pub messages: u64,
    /// Frame bytes written to the socket (length prefix + header + payload).
    pub bytes_sent: u64,
    /// Frame bytes read from the socket (replies, including the prefix).
    pub bytes_received: u64,
    /// Wall-clock nanoseconds spent inside round trips (send → reply read).
    pub rtt_nanos: u64,
    /// Modeled virtual-time cost of the same round trips, in picoseconds.
    pub modeled_ps: u64,
}

impl WireServiceSnapshot {
    /// Average measured wall-clock microseconds per round trip.
    pub fn measured_us_per_rpc(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.rtt_nanos as f64 / 1e3 / self.messages as f64
        }
    }

    /// Average modeled virtual-time microseconds per round trip.
    pub fn modeled_us_per_rpc(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.modeled_ps as f64 / 1e6 / self.messages as f64
        }
    }
}

/// Per-service wire counters for a transport backend that performs real I/O.
///
/// Kept separate from [`NodeStats`] on purpose: the per-node counters feed
/// the protocol digests and must be byte-for-byte identical across
/// backends, while these record *physical* traffic that only exists when a
/// socket is involved.
#[derive(Debug, Default)]
pub struct WireStats {
    services: std::sync::Mutex<Vec<WireServiceSnapshot>>,
}

impl WireStats {
    /// Record one completed round trip for service-table index `service`.
    pub fn record(
        &self,
        service: usize,
        bytes_sent: u64,
        bytes_received: u64,
        rtt_nanos: u64,
        modeled_ps: u64,
    ) {
        let mut table = self.services.lock().expect("wire stats lock poisoned");
        if table.len() <= service {
            let first_new = table.len();
            table.resize_with(service + 1, WireServiceSnapshot::default);
            for (i, entry) in table.iter_mut().enumerate().skip(first_new) {
                entry.service = i;
            }
        }
        let entry = &mut table[service];
        entry.messages += 1;
        entry.bytes_sent += bytes_sent;
        entry.bytes_received += bytes_received;
        entry.rtt_nanos += rtt_nanos;
        entry.modeled_ps += modeled_ps;
    }

    /// Snapshot of every service that saw at least one round trip, in
    /// service-table order.
    pub fn snapshot(&self) -> Vec<WireServiceSnapshot> {
        self.services
            .lock()
            .expect("wire stats lock poisoned")
            .iter()
            .filter(|s| s.messages > 0)
            .copied()
            .collect()
    }

    /// Reset all counters (between experiment runs).
    pub fn reset(&self) {
        self.services
            .lock()
            .expect("wire stats lock poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_accumulate_per_service() {
        let w = WireStats::default();
        assert!(w.snapshot().is_empty());
        w.record(1, 100, 200, 5_000, 7_000_000);
        w.record(1, 50, 60, 1_000, 1_000_000);
        w.record(3, 10, 20, 500, 250_000);
        let snap = w.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].service, 1);
        assert_eq!(snap[0].messages, 2);
        assert_eq!(snap[0].bytes_sent, 150);
        assert_eq!(snap[0].bytes_received, 260);
        assert_eq!(snap[0].rtt_nanos, 6_000);
        assert_eq!(snap[0].modeled_ps, 8_000_000);
        assert!((snap[0].measured_us_per_rpc() - 3.0).abs() < 1e-9);
        assert!((snap[0].modeled_us_per_rpc() - 4.0).abs() < 1e-9);
        assert_eq!(snap[1].service, 3);
        w.reset();
        assert!(w.snapshot().is_empty());
        assert_eq!(WireServiceSnapshot::default().measured_us_per_rpc(), 0.0);
    }

    #[test]
    fn snapshot_reflects_bumps() {
        let s = NodeStats::default();
        NodeStats::bump(&s.locality_checks);
        NodeStats::bump(&s.locality_checks);
        NodeStats::bump_by(&s.bytes_sent, 4096);
        NodeStats::bump(&s.page_faults);
        let snap = s.snapshot();
        assert_eq!(snap.locality_checks, 2);
        assert_eq!(snap.bytes_sent, 4096);
        assert_eq!(snap.page_faults, 1);
        assert_eq!(snap.mprotect_calls, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = NodeStats::default();
        NodeStats::bump_by(&s.field_reads, 10);
        NodeStats::bump_by(&s.field_writes, 5);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.field_reads, 0);
        assert_eq!(snap.field_writes, 0);
        assert_eq!(snap.field_accesses(), 0);
    }

    #[test]
    fn merged_and_total_sum_fieldwise() {
        let a = StatsSnapshot {
            page_loads: 3,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = StatsSnapshot {
            page_loads: 4,
            bytes_received: 50,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.page_loads, 7);
        assert_eq!(m.bytes_sent, 100);
        assert_eq!(m.bytes_received, 50);
        assert_eq!(m.bytes_moved(), 150);

        let t = StatsSnapshot::total([&a, &b, &m]);
        assert_eq!(t.page_loads, 14);
    }

    #[test]
    fn fields_enumeration_contains_every_counter() {
        let snap = StatsSnapshot::default();
        let names: Vec<&str> = snap.fields().iter().map(|(n, _)| *n).collect();
        for expected in [
            "locality_checks",
            "page_faults",
            "mprotect_calls",
            "page_loads",
            "diff_messages",
            "monitor_enters",
            "field_reads",
            "field_writes",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 48);
        for added in [
            "batched_flushes",
            "rpc_retries",
            "rpc_timeouts",
            "frames_dropped_injected",
            "nodes_failed",
            "pages_resynced",
            "diff_bytes",
            "pages_migrated",
            "fetch_overlap_cycles_hidden",
            "hints_sent",
            "hinted_fetches_issued",
            "hinted_fetches_completed",
            "hinted_fetches_wasted",
            "hinted_fetches_reissued",
            "deferred_flushes",
            "flush_overlap_cycles_hidden",
            "serving_ops",
            "serving_op_ps_total",
            "combined_fetches",
            "combined_diff_batches",
            "group_relay_cycles",
        ] {
            assert!(names.contains(&added), "missing {added}");
        }
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        use std::sync::Arc;
        let s = Arc::new(NodeStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        NodeStats::bump(&s.field_reads);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().field_reads, 40_000);
    }
}
