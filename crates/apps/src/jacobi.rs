//! Jacobi: 2-D heat diffusion on an insulated plate (Fig. 2).
//!
//! The paper (§4.1): "The Jacobi program computes the temperature
//! distribution on an insulated plate after 100 time steps, using a 1024 by
//! 1024 mesh of cells [...] each thread owns a block of contiguous rows of
//! the mesh.  During every timestep each thread must retrieve a 'boundary'
//! row from its 'neighbor' thread holding the rows to the 'north' and from
//! its 'neighbor' thread holding the rows to the 'south'."
//!
//! The mesh is a Java-style `double[][]`: a vector of row objects, each row
//! homed on the node of the thread that owns it.  Every timestep each thread
//! updates its rows of the `next` buffer from the `current` buffer (five-point
//! stencil), so it reads exactly two remote rows — its north and south
//! boundary rows — and everything else is local.  A barrier separates
//! timesteps; its monitor-entry invalidation is what forces the boundary rows
//! to be re-fetched every step, which is the program's entire communication.

use hyperion::prelude::*;

use crate::common::{block_range, node_of_thread, AccessMode, Benchmark, BenchmarkName};

/// Parameters of the Jacobi benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JacobiParams {
    /// Mesh is `size × size` cells.
    pub size: usize,
    /// Number of timesteps.
    pub steps: usize,
}

impl JacobiParams {
    /// The paper's problem size: 1024×1024 mesh, 100 steps.
    pub fn paper() -> Self {
        JacobiParams {
            size: 1024,
            steps: 100,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        JacobiParams {
            size: 192,
            steps: 30,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        JacobiParams { size: 48, steps: 6 }
    }
}

/// Result of a Jacobi run.
#[derive(Clone, Debug, PartialEq)]
pub struct JacobiResult {
    /// Sum of all interior cell temperatures after the last step (cheap
    /// digest used to compare against the sequential reference).
    pub interior_sum: f64,
    /// Temperature at the mesh centre.
    pub center: f64,
}

/// Boundary conditions: the north edge is held at 100 degrees, the other
/// edges at 0, and the interior starts at 0.
fn initial_value(row: usize, _col: usize, _size: usize) -> f64 {
    if row == 0 {
        100.0
    } else {
        0.0
    }
}

/// Per-cell instruction mix of the five-point stencil as the bytecode-to-C
/// compiler would emit it: four neighbour loads + one store (each with the
/// array bounds check Java mandates), three adds and one multiply in double
/// precision, plus loop/index bookkeeping.
fn cell_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 3.0)
        .with(Op::FpMul, 1.0)
        .with(Op::Load, 4.0)
        .with(Op::Store, 1.0)
        // Bounds + null checks on the five array accesses.
        .with(Op::IntAlu, 5.0)
        .with(Op::Branch, 5.0)
        // Index arithmetic and loop control.
        .with(Op::IntAlu, 4.0)
        .with(Op::Branch, 1.0)
}

/// Sequential reference implementation; returns (interior sum, centre value).
#[allow(clippy::needless_range_loop)]
pub fn sequential(params: &JacobiParams) -> (f64, f64) {
    let n = params.size;
    let mut cur = vec![vec![0.0f64; n]; n];
    let mut next = vec![vec![0.0f64; n]; n];
    for (r, row) in cur.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = initial_value(r, c, n);
        }
    }
    next.clone_from(&cur);
    for _ in 0..params.steps {
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                next[r][c] = 0.25 * (cur[r - 1][c] + cur[r + 1][c] + cur[r][c - 1] + cur[r][c + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut sum = 0.0;
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            sum += cur[r][c];
        }
    }
    (sum, cur[n / 2][n / 2])
}

/// A stencil neighbour row in the bulk kernel: either a pinned local
/// snapshot (a remote boundary row fetched once per step) or a cached row
/// handle whose elements are read through the DSM (a locally owned row).
enum NeighbourRow {
    View(ArrayView<f64>),
    Dsm(HArray<f64>),
}

impl NeighbourRow {
    #[inline]
    fn get(&self, worker: &mut ThreadCtx, c: usize) -> f64 {
        match self {
            NeighbourRow::View(v) => v.get(c),
            NeighbourRow::Dsm(row) => row.get(worker, c),
        }
    }
}

/// Run the Jacobi benchmark under `config` with the default locality-aware
/// access mode ([`AccessMode::Bulk`]).
pub fn run(config: HyperionConfig, params: &JacobiParams) -> RunOutcome<JacobiResult> {
    run_with(config, params, AccessMode::Bulk)
}

/// Run the Jacobi benchmark under `config` with an explicit access mode.
///
/// [`AccessMode::Element`] re-reads the row indirection through the DSM on
/// every access, as the seed runtime (and un-hoisted compiled Java) did.
/// [`AccessMode::Bulk`] caches the row handles once per thread and performs
/// the per-step boundary exchange as bulk row reads, so the DSM sees per-page
/// instead of per-element traffic for the communication; the interior
/// stencil still pays the paper's per-access detection, keeping the
/// `java_ic` / `java_pf` comparison meaningful.
pub fn run_with(
    config: HyperionConfig,
    params: &JacobiParams,
    mode: AccessMode,
) -> RunOutcome<JacobiResult> {
    assert!(params.size >= 4, "mesh must be at least 4x4");
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let n = params.size;
    let steps = params.steps;

    runtime.run(move |ctx| {
        // Both buffers are distributed by blocks of rows: row r is homed on
        // the node of the thread that owns it.
        let owner_of_row = move |r: usize| {
            let mut owner = threads - 1;
            for t in 0..threads {
                let (s, e) = block_range(n, threads, t);
                if r >= s && r < e {
                    owner = t;
                    break;
                }
            }
            node_of_thread(owner, nodes)
        };
        let a: HMatrix<f64> = ctx.alloc_matrix(n, n, owner_of_row);
        let b: HMatrix<f64> = ctx.alloc_matrix(n, n, owner_of_row);
        let barrier = JBarrier::new(ctx, threads, NodeId(0));

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = barrier.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let (row_start, row_end) = block_range(n, threads, t);
                let per_cell = worker.estimate(&cell_mix());
                let init_mix = worker.estimate(
                    &OpCounts::new()
                        .with(Op::Store, 1.0)
                        .with(Op::IntAlu, 2.0)
                        .with(Op::Branch, 1.0),
                );

                match mode {
                    AccessMode::Element => {
                        // Each thread initialises its own rows (in both
                        // buffers), element by element.
                        for r in row_start..row_end {
                            let row_a = a.row(worker, r);
                            let row_b = b.row(worker, r);
                            for c in 0..n {
                                let v = initial_value(r, c, n);
                                row_a.put(worker, c, v);
                                row_b.put(worker, c, v);
                            }
                            worker.charge_iters(&init_mix, 2 * n as u64);
                        }
                        barrier.arrive(worker);

                        // Timestep loop: read `cur`, write `next`, swap,
                        // barrier.  Row references are re-fetched through the
                        // DSM each step (after every barrier invalidation).
                        let (mut cur, mut next) = (a, b);
                        for _step in 0..steps {
                            let lo = row_start.max(1);
                            let hi = row_end.min(n - 1);
                            for r in lo..hi {
                                // Row references are hoisted out of the inner
                                // loop, as the Java source would.
                                let north = cur.row(worker, r - 1);
                                let here = cur.row(worker, r);
                                let south = cur.row(worker, r + 1);
                                let out = next.row(worker, r);
                                for c in 1..n - 1 {
                                    let v = 0.25
                                        * (north.get(worker, c)
                                            + south.get(worker, c)
                                            + here.get(worker, c - 1)
                                            + here.get(worker, c + 1));
                                    out.put(worker, c, v);
                                }
                                worker.charge_iters(&per_cell, (n - 2) as u64);
                            }
                            std::mem::swap(&mut cur, &mut next);
                            barrier.arrive(worker);
                        }
                    }
                    AccessMode::Bulk => {
                        // Row handles are fetched once per thread: the row
                        // references never change, so the cache stays valid
                        // across every barrier.
                        let rows_a = a.rows_view(worker);
                        let rows_b = b.rows_view(worker);

                        // Initialisation writes whole rows in bulk.
                        for r in row_start..row_end {
                            let vals: Vec<f64> = (0..n).map(|c| initial_value(r, c, n)).collect();
                            rows_a.row(r).write_slice(worker, 0, &vals);
                            rows_b.row(r).write_slice(worker, 0, &vals);
                            worker.charge_iters(&init_mix, 2 * n as u64);
                        }
                        barrier.arrive(worker);

                        let (mut cur, mut next) = (&rows_a, &rows_b);
                        for _step in 0..steps {
                            // Issue both boundary-row fetches right after
                            // the barrier's acquire: by the time the south
                            // neighbour is pinned (after the whole block's
                            // stencil), an overlapped transport has hidden
                            // its round trip entirely, and most of the
                            // north one behind the first rows.
                            if row_start >= 1 {
                                cur.row(row_start - 1).prefetch(worker);
                            }
                            if row_end < n {
                                cur.row(row_end).prefetch(worker);
                            }
                            let lo = row_start.max(1);
                            let hi = row_end.min(n - 1);
                            for r in lo..hi {
                                // The two block-boundary neighbours are
                                // remote: pin each once per step with one
                                // bulk read.  In-block neighbours are owned
                                // rows read through the DSM per element.
                                let north = if r == row_start {
                                    NeighbourRow::View(cur.row_view(worker, r - 1))
                                } else {
                                    NeighbourRow::Dsm(cur.row(r - 1))
                                };
                                let south = if r + 1 == row_end {
                                    NeighbourRow::View(cur.row_view(worker, r + 1))
                                } else {
                                    NeighbourRow::Dsm(cur.row(r + 1))
                                };
                                let here = cur.row(r);
                                let out = next.row(r);
                                for c in 1..n - 1 {
                                    let v = 0.25
                                        * (north.get(worker, c)
                                            + south.get(worker, c)
                                            + here.get(worker, c - 1)
                                            + here.get(worker, c + 1));
                                    out.put(worker, c, v);
                                }
                                worker.charge_iters(&per_cell, (n - 2) as u64);
                            }
                            std::mem::swap(&mut cur, &mut next);
                            barrier.arrive(worker);
                        }
                    }
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // The buffer holding the final state after `steps` swaps.  The scan
        // performs no acquire, so every row fetch can be issued up front
        // and the round trips pipeline under the overlapped transport.
        let finals = if steps % 2 == 0 { a } else { b };
        let rows = finals.rows_view(ctx);
        for r in 1..n - 1 {
            rows.row(r).prefetch(ctx);
        }
        let mut sum = 0.0;
        for r in 1..n - 1 {
            let row = rows.row_view(ctx, r);
            for c in 1..n - 1 {
                sum += row.get(c);
            }
        }
        let center = rows.row_view(ctx, n / 2).get(n / 2);
        JacobiResult {
            interior_sum: sum,
            center,
        }
    })
}

impl Benchmark for JacobiParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::Jacobi
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.interior_sum, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn sequential_heat_flows_from_the_hot_edge() {
        let (sum, center) = sequential(&JacobiParams {
            size: 32,
            steps: 40,
        });
        assert!(sum > 0.0);
        assert!((0.0..100.0).contains(&center));
        // More steps means more heat has diffused into the interior.
        let (sum_more, _) = sequential(&JacobiParams {
            size: 32,
            steps: 80,
        });
        assert!(sum_more > sum);
    }

    #[test]
    fn parallel_matches_sequential_for_both_protocols() {
        let params = JacobiParams::quick();
        let (expected_sum, expected_center) = sequential(&params);
        for protocol in ProtocolKind::all() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                assert!(
                    (out.result.interior_sum - expected_sum).abs() < 1e-6,
                    "{protocol:?}/{nodes} nodes: {} vs {}",
                    out.result.interior_sum,
                    expected_sum
                );
                assert!((out.result.center - expected_center).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn boundary_rows_are_the_only_remote_traffic() {
        let params = JacobiParams::quick();
        let out = run(config(4, ProtocolKind::JavaPf), &params);
        let total = out.report.total_stats();
        // Every timestep each interior thread re-fetches its two boundary
        // rows (plus barrier state); the mesh rows it owns never travel.
        assert!(total.page_loads > 0);
        let interior_cells = (params.size - 2) * (params.size - 2);
        let all_accesses = total.field_accesses() as usize;
        assert!(
            all_accesses > interior_cells * params.steps,
            "stencil accesses must dominate"
        );
        // Barrier per step (plus the initial one) for each of the 4 threads.
        assert_eq!(total.barrier_waits as usize, 4 * (params.steps + 1));
    }

    #[test]
    fn both_access_modes_agree_for_both_protocols() {
        let params = JacobiParams::quick();
        let (expected_sum, _) = sequential(&params);
        for protocol in ProtocolKind::all() {
            for mode in [AccessMode::Element, AccessMode::Bulk] {
                let out = run_with(config(3, protocol), &params, mode);
                assert!(
                    (out.result.interior_sum - expected_sum).abs() < 1e-6,
                    "{protocol:?}/{mode}: {} vs {expected_sum}",
                    out.result.interior_sum
                );
            }
        }
    }

    #[test]
    fn bulk_boundary_exchange_reduces_protocol_traffic() {
        let params = JacobiParams::quick();

        // java_pf: the bulk exchange (cached row handles + per-page boundary
        // reads) must produce strictly fewer protocol messages — page
        // fetches and invalidated pages — than the per-element kernel.
        let elem = run_with(
            config(4, ProtocolKind::JavaPf),
            &params,
            AccessMode::Element,
        );
        let bulk = run_with(config(4, ProtocolKind::JavaPf), &params, AccessMode::Bulk);
        assert_eq!(
            bulk.result, elem.result,
            "access modes must compute identical results"
        );
        let te = elem.report.total_stats();
        let tb = bulk.report.total_stats();
        assert!(
            tb.page_loads < te.page_loads,
            "bulk must fetch strictly fewer pages: {} vs {}",
            tb.page_loads,
            te.page_loads
        );
        assert!(
            tb.pages_invalidated < te.pages_invalidated,
            "bulk must invalidate strictly fewer pages: {} vs {}",
            tb.pages_invalidated,
            te.pages_invalidated
        );

        // java_ic: same results, far fewer in-line checks.
        let elem_ic = run_with(
            config(4, ProtocolKind::JavaIc),
            &params,
            AccessMode::Element,
        );
        let bulk_ic = run_with(config(4, ProtocolKind::JavaIc), &params, AccessMode::Bulk);
        assert_eq!(bulk_ic.result, elem_ic.result);
        assert!(
            bulk_ic.report.total_stats().locality_checks
                < elem_ic.report.total_stats().locality_checks
        );

        // And the two protocols agree with each other under bulk access.
        assert_eq!(bulk.result, bulk_ic.result);
    }

    #[test]
    fn element_mode_boundary_rows_consume_directory_hints() {
        // At size 80 with 4 threads each block holds 20 rows of 80 slots,
        // so the north boundary row (the last row of each block) spans two
        // pages.  Element-mode workers demand-miss those two pages in the
        // same order every step; from the second epoch on the home's
        // directory has learned the successor pair and hints the second
        // page while the first is being served — the later demand miss
        // completes an RPC that is already in flight.
        let params = JacobiParams { size: 80, steps: 5 };
        let config = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(4)
            .protocol(ProtocolKind::JavaPf)
            .transport(hyperion::TransportConfig::directory())
            .build()
            .unwrap();
        let out = run_with(config, &params, AccessMode::Element);
        let (expected_sum, _) = sequential(&params);
        assert!(
            (out.result.interior_sum - expected_sum).abs() < 1e-6,
            "hints must not change the answer: {} vs {expected_sum}",
            out.result.interior_sum
        );
        let total = out.report.total_stats();
        assert!(total.hints_sent > 0, "row-spanning misses must draw hints");
        assert!(
            total.hinted_fetches_completed > 0,
            "demand misses must complete hinted in-flight fetches"
        );
        assert!(
            total.hinted_fetches_wasted * 8 <= total.hints_sent.max(16),
            "hint waste {} exceeds 1/8 of {} hints sent",
            total.hinted_fetches_wasted,
            total.hints_sent
        );
    }

    /// A size where compute dominates the per-step communication, as in the
    /// paper's 1024×1024 runs (the `quick` instance is kept tiny for the
    /// correctness tests and is too communication-bound to show the effect).
    fn shape_params() -> JacobiParams {
        JacobiParams {
            size: 256,
            steps: 6,
        }
    }

    #[test]
    fn java_pf_beats_java_ic_on_jacobi() {
        let params = shape_params();
        let ic = run(config(3, ProtocolKind::JavaIc), &params)
            .report
            .execution_time
            .as_secs_f64();
        let pf = run(config(3, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        assert!(
            pf < ic,
            "page-fault protocol should win on Jacobi: pf={pf:.4}s ic={ic:.4}s"
        );
    }

    #[test]
    fn jacobi_speeds_up_with_more_nodes() {
        let params = shape_params();
        let t1 = run(config(1, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        let t4 = run(config(4, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        assert!(t4 < t1, "4-node run should be faster: {t4:.4}s vs {t1:.4}s");
    }

    #[test]
    fn benchmark_trait_reports_figure_two() {
        let params = JacobiParams::quick();
        assert_eq!(params.name().figure(), 2);
        let (digest, _) = params.execute(config(2, ProtocolKind::JavaIc));
        let (expected, _) = sequential(&params);
        assert!((digest - expected).abs() < 1e-6);
    }
}
