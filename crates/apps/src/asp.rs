//! ASP: all-pairs shortest paths with Floyd's algorithm (Fig. 5).
//!
//! The paper (§4.1): "ASP uses a two-dimensional distance matrix.  As in
//! Jacobi, each thread owns a block of contiguous rows of the matrix.  During
//! each iteration the 'current' row of the matrix must be retrieved by all
//! threads."  The paper highlights ASP as the extreme case for the protocol
//! comparison: "In ASP the innermost loop is only doing an integer add and an
//! integer compare while performing three object-locality checks.  Removing
//! these checks obviously has a large impact on the performance" — the
//! largest improvement the paper reports (64 % on the Myrinet cluster).
//!
//! The implementation is the classic parallel Floyd-Warshall: for every pivot
//! `k`, each thread relaxes its own block of rows against pivot row `k`,
//! which it fetches from the pivot row's owner after the per-iteration
//! barrier.

use hyperion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{block_range, node_of_thread, Benchmark, BenchmarkName};

/// "No edge" marker: a large distance that never overflows when two of them
/// are added.
pub const INFINITY: i64 = i64::MAX / 4;

/// Parameters of the ASP benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AspParams {
    /// Number of graph vertices.
    pub vertices: usize,
    /// Seed of the random graph generator.
    pub seed: u64,
    /// Probability (in percent) that a directed edge exists.
    pub edge_percent: u32,
}

impl AspParams {
    /// The paper's problem size: a 2000-vertex graph.
    pub fn paper() -> Self {
        AspParams {
            vertices: 2000,
            seed: 42,
            edge_percent: 30,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        AspParams {
            vertices: 192,
            seed: 42,
            edge_percent: 30,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        AspParams {
            vertices: 48,
            seed: 7,
            edge_percent: 35,
        }
    }
}

/// Result of an ASP run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AspResult {
    /// Sum of all finite pairwise distances (digest for verification).
    pub distance_sum: i64,
    /// Number of vertex pairs that remain unreachable.
    pub unreachable_pairs: u64,
}

/// Generate the dense adjacency matrix of a random directed graph.
pub fn generate_graph(params: &AspParams) -> Vec<Vec<i64>> {
    let n = params.vertices;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut d = vec![vec![INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if i == j {
                *cell = 0;
            } else if rng.gen_range(0..100) < params.edge_percent {
                *cell = rng.gen_range(1..100);
            }
        }
    }
    d
}

/// Digest of a distance matrix: (sum of finite distances, unreachable pairs).
pub fn digest(d: &[Vec<i64>]) -> (i64, u64) {
    let mut sum = 0i64;
    let mut unreachable = 0u64;
    for row in d {
        for &v in row {
            if v >= INFINITY {
                unreachable += 1;
            } else {
                sum += v;
            }
        }
    }
    (sum, unreachable)
}

/// Sequential Floyd-Warshall reference.
#[allow(clippy::needless_range_loop)]
pub fn sequential(params: &AspParams) -> AspResult {
    let n = params.vertices;
    let mut d = generate_graph(params);
    for k in 0..n {
        for i in 0..n {
            let dik = d[i][k];
            if dik >= INFINITY {
                continue;
            }
            for j in 0..n {
                let via = dik + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    let (distance_sum, unreachable_pairs) = digest(&d);
    AspResult {
        distance_sum,
        unreachable_pairs,
    }
}

/// Per-inner-iteration instruction mix: integer add + compare with the row
/// references and `d[i][k]` hoisted out of the loop — the paper's "integer
/// add and an integer compare" with a conditional store.
fn inner_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::IntAlu, 2.0)
        .with(Op::Load, 2.0)
        .with(Op::Store, 0.5)
        .with(Op::Branch, 2.0)
}

/// Run the ASP benchmark under `config`.
pub fn run(config: HyperionConfig, params: &AspParams) -> RunOutcome<AspResult> {
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let n = params.vertices;
    let graph = generate_graph(params);

    runtime.run(move |ctx| {
        // The distance matrix: block-of-rows distribution.
        let owner_of_row = move |r: usize| {
            let mut owner = threads - 1;
            for t in 0..threads {
                let (s, e) = block_range(n, threads, t);
                if r >= s && r < e {
                    owner = t;
                    break;
                }
            }
            node_of_thread(owner, nodes)
        };
        let dist: HMatrix<i64> = ctx.alloc_matrix(n, n, owner_of_row);
        let barrier = JBarrier::new(ctx, threads, NodeId(0));

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = barrier.clone();
            // Each worker receives its block of the input graph by value
            // (the Java program reads the input file on every node).
            let (row_start, row_end) = block_range(n, threads, t);
            let my_rows: Vec<Vec<i64>> = graph[row_start..row_end].to_vec();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let per_inner = worker.estimate(&inner_mix());
                let init_mix = worker.estimate(
                    &OpCounts::new()
                        .with(Op::Store, 1.0)
                        .with(Op::IntAlu, 2.0)
                        .with(Op::Branch, 1.0),
                );

                // Row handles are fetched once: the row references never
                // change, so the cache stays valid across every barrier.
                let rows = dist.rows_view(worker);

                // Initialise the owned rows (bulk, one write per row).
                for (off, src_row) in my_rows.iter().enumerate() {
                    rows.row(row_start + off).write_slice(worker, 0, src_row);
                    worker.charge_iters(&init_mix, n as u64);
                }
                barrier.arrive(worker);

                // Floyd-Warshall pivot loop.  The relaxation kernel stays
                // deliberately element-wise: its "integer add and integer
                // compare while performing three object-locality checks" is
                // the effect the paper measures on ASP.
                //
                // Under the prefetch-directory transport the loop is
                // restructured (modelling the compiler pass a split-
                // transaction runtime enables) to issue the pivot-row fetch
                // a statement-window early: the whole `d[i][k]` column is
                // read *before* the first pivot-row element, which is legal
                // because neither `d[i][k]` nor `d[k][j]` changes during
                // iteration `k`, and it widens the window between the
                // overlapped fetch and its first use from one statement to
                // a full column scan.
                let early_issue = worker.transport().prefetch_hints;
                let mut diks: Vec<i64> = Vec::new();
                for k in 0..n {
                    let pivot_row = rows.row(k);
                    // Issue the pivot-row fetch as early as the consistency
                    // window allows — right after the barrier's acquire
                    // invalidated the cache.  Under the overlapped transport
                    // its latency hides behind the leading local rows.
                    pivot_row.prefetch(worker);
                    if early_issue {
                        diks.clear();
                        for i in row_start..row_end {
                            diks.push(rows.row(i).get(worker, k));
                        }
                    }
                    for i in row_start..row_end {
                        let row_i = rows.row(i);
                        let dik = if early_issue {
                            diks[i - row_start]
                        } else {
                            row_i.get(worker, k)
                        };
                        if dik >= INFINITY {
                            worker.charge_iters(&per_inner, 1);
                            continue;
                        }
                        for j in 0..n {
                            let via = dik + pivot_row.get(worker, j);
                            if via < row_i.get(worker, j) {
                                row_i.put(worker, j, via);
                            }
                        }
                        worker.charge_iters(&per_inner, n as u64);
                    }
                    barrier.arrive(worker);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // Digest the final matrix (bulk row reads).  All row fetches are
        // issued up front: no acquire happens during the scan, so the
        // copies stay valid, and under the overlapped transport the
        // round trips pipeline instead of paying one stall per row.
        let rows = dist.rows_view(ctx);
        for i in 0..n {
            rows.row(i).prefetch(ctx);
        }
        let mut distance_sum = 0i64;
        let mut unreachable_pairs = 0u64;
        for i in 0..n {
            let row = rows.row_view(ctx, i);
            for v in row.iter() {
                if v >= INFINITY {
                    unreachable_pairs += 1;
                } else {
                    distance_sum += v;
                }
            }
        }
        AspResult {
            distance_sum,
            unreachable_pairs,
        }
    })
}

impl Benchmark for AspParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::Asp
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.distance_sum as f64, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let params = AspParams::quick();
        let a = generate_graph(&params);
        let b = generate_graph(&params);
        assert_eq!(a, b);
        let other = generate_graph(&AspParams { seed: 8, ..params });
        assert_ne!(a, other);
        // Diagonal is zero.
        for (i, row) in a.iter().enumerate() {
            assert_eq!(row[i], 0);
        }
    }

    #[test]
    fn sequential_floyd_never_increases_distances() {
        let params = AspParams::quick();
        let before = digest(&generate_graph(&params));
        let after = sequential(&params);
        assert!(after.unreachable_pairs <= before.1);
        // Triangle inequality spot check: all distances are non-negative.
        assert!(after.distance_sum >= 0);
    }

    #[test]
    fn parallel_matches_sequential_for_both_protocols() {
        let params = AspParams::quick();
        let expected = sequential(&params);
        for protocol in ProtocolKind::all() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                assert_eq!(out.result, expected, "{protocol:?} on {nodes} nodes");
            }
        }
    }

    #[test]
    fn java_pf_beats_java_ic_by_a_wide_margin_on_asp() {
        // ASP is the paper's best case for java_pf (64% on Myrinet).  The
        // single-node comparison isolates the in-line-check overhead, exactly
        // like the leftmost points of the paper's Fig. 5.
        let params = AspParams {
            vertices: 96,
            seed: 7,
            edge_percent: 35,
        };
        let ic = run(config(1, ProtocolKind::JavaIc), &params)
            .report
            .execution_time
            .as_secs_f64();
        let pf = run(config(1, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        let improvement = (ic - pf) / ic;
        assert!(
            improvement > 0.40,
            "expected a large improvement from removing checks, got {:.1}%",
            improvement * 100.0
        );
    }

    #[test]
    fn java_pf_beats_java_ic_on_asp_with_multiple_nodes() {
        let params = AspParams {
            vertices: 128,
            seed: 7,
            edge_percent: 35,
        };
        let ic = run(config(2, ProtocolKind::JavaIc), &params)
            .report
            .execution_time
            .as_secs_f64();
        let pf = run(config(2, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        assert!(pf < ic, "pf={pf:.4}s should beat ic={ic:.4}s");
    }

    #[test]
    fn pivot_row_broadcast_generates_remote_reads() {
        let params = AspParams::quick();
        let out = run(config(4, ProtocolKind::JavaPf), &params);
        let total = out.report.total_stats();
        assert!(total.page_loads > 0, "pivot rows must be fetched remotely");
        assert_eq!(
            total.barrier_waits as usize,
            4 * (params.vertices + 1),
            "one barrier per pivot iteration plus the initial one"
        );
    }

    #[test]
    fn benchmark_trait_reports_figure_five() {
        let params = AspParams::quick();
        assert_eq!(params.name().figure(), 5);
        let (digest_value, _) = params.execute(config(2, ProtocolKind::JavaPf));
        assert_eq!(digest_value, sequential(&params).distance_sum as f64);
    }
}
