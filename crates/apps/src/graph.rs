//! PageRank: an irregular graph kernel over a seeded edge list (Fig. 9, the
//! serving-workload extension).
//!
//! The graph is generated from a seed with hub-skewed in-edges: every vertex
//! draws its in-neighbours from a Zipf-like mix that prefers a small set of
//! hub vertices, so the rank reads of one vertex scatter across the whole
//! vertex range — non-strided page access that defeats stride and
//! successor-pair prediction by construction.
//!
//! Vertices are block-partitioned over the worker threads; each thread owns
//! its block of the double-buffered rank arrays (homed on its node) and
//! pulls contributions from its in-neighbours in fixed list order, so every
//! floating-point sum is order-deterministic.  A barrier separates
//! iterations, exactly like Jacobi's timestep loop: the acquire invalidates
//! the caches, forcing the next iteration to re-fetch the remote rank pages
//! its irregular reads touch.
//!
//! Each vertex update is one serving-style operation: its modeled latency is
//! recorded via [`ThreadCtx::record_serving_op`] and folded into the
//! throughput / p99 columns of the fig9 report.

use hyperion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{block_range, node_of_thread, Benchmark, BenchmarkName};

/// PageRank damping factor.
const DAMPING: f64 = 0.85;

/// Parameters of the PageRank benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRankParams {
    /// Number of vertices.
    pub vertices: usize,
    /// Average in-degree of a vertex (each vertex draws `1..=2*degree`
    /// in-neighbours).
    pub degree: usize,
    /// Power iterations to run.
    pub iterations: usize,
    /// Seed of the edge-list generator.
    pub seed: u64,
}

impl PageRankParams {
    /// Full-scale serving instance.
    pub fn paper() -> Self {
        PageRankParams {
            vertices: 8_192,
            degree: 16,
            iterations: 20,
            seed: 0x6_1AF,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        PageRankParams {
            vertices: 2_048,
            degree: 8,
            iterations: 10,
            seed: 0x6_1AF,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        PageRankParams {
            vertices: 192,
            degree: 4,
            iterations: 4,
            seed: 0x6_1AF,
        }
    }
}

/// A generated graph: flattened in-edge lists plus out-degrees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeList {
    /// `offsets[v]..offsets[v + 1]` indexes `sources` with vertex `v`'s
    /// in-neighbours, in generation order.
    pub offsets: Vec<u64>,
    /// Flattened in-neighbour lists.
    pub sources: Vec<u64>,
    /// Out-degree of every vertex (how many in-lists it appears in).
    pub out_degree: Vec<u64>,
}

/// Generate the seeded hub-skewed edge list.
///
/// Pure function of `params`: the parallel kernel and the sequential
/// reference both call it and operate on identical edges.
pub fn generate_edges(params: &PageRankParams) -> EdgeList {
    let n = params.vertices;
    let hubs = (n / 16).max(1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut sources = Vec::new();
    let mut out_degree = vec![0u64; n];
    offsets.push(0);
    for v in 0..n {
        let degree = rng.gen_range(1..2 * params.degree.max(1) + 1);
        for _ in 0..degree {
            // Hub-skewed source choice: half the edges come from the small
            // hub set, the rest from anywhere — the "celebrity followee"
            // shape of serving-style graphs.
            let u = if rng.gen_range(0u32..2) == 0 {
                rng.gen_range(0..hubs)
            } else {
                rng.gen_range(0..n)
            };
            // Self-loops would let a vertex read its own in-flight buffer;
            // redirect them to the next vertex.
            let u = if u == v { (u + 1) % n } else { u };
            sources.push(u as u64);
            out_degree[u] += 1;
        }
        offsets.push(sources.len() as u64);
    }
    EdgeList {
        offsets,
        sources,
        out_degree,
    }
}

/// Result of a PageRank run.
#[derive(Clone, Debug, PartialEq)]
pub struct PageRankResult {
    /// Weighted fixed-order sum of the final ranks (the digest).
    pub digest: f64,
    /// Rank of vertex 0 (a hub) after the last iteration.
    pub hub_rank: f64,
}

/// Per-edge instruction mix: load the source rank and its out-degree,
/// one divide + add in double precision, plus list/index bookkeeping.
fn edge_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 1.0)
        .with(Op::FpMul, 1.0)
        .with(Op::Load, 3.0)
        .with(Op::IntAlu, 4.0)
        .with(Op::Branch, 2.0)
}

fn digest_of(ranks: &[f64]) -> (f64, f64) {
    let mut digest = 0.0;
    for (v, r) in ranks.iter().enumerate() {
        digest += r * ((v % 16) + 1) as f64;
    }
    (digest, ranks[0])
}

/// Sequential reference implementation.
pub fn sequential(params: &PageRankParams) -> PageRankResult {
    let n = params.vertices;
    let edges = generate_edges(params);
    let mut cur = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..params.iterations {
        for (v, slot) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for e in edges.offsets[v]..edges.offsets[v + 1] {
                let u = edges.sources[e as usize] as usize;
                acc += cur[u] / edges.out_degree[u].max(1) as f64;
            }
            *slot = (1.0 - DAMPING) / n as f64 + DAMPING * acc;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let (digest, hub_rank) = digest_of(&cur);
    PageRankResult { digest, hub_rank }
}

/// Run PageRank under `config`.
pub fn run(config: HyperionConfig, params: &PageRankParams) -> RunOutcome<PageRankResult> {
    assert!(params.vertices >= 4 && params.iterations > 0);
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let params = *params;

    assert!(
        params.vertices >= runtime.config().total_app_threads(),
        "every thread needs at least one vertex"
    );

    runtime.run(move |ctx| {
        let n = params.vertices;
        let edges = generate_edges(&params);

        // Double-buffered ranks distributed by vertex block (each row of the
        // two matrices is one vertex block, homed on its owner), so a rank
        // read of a random source vertex is remote whenever the source lives
        // in another thread's block — the irregular access this app exists
        // to produce.
        let rank_a: HMatrix<f64> =
            ctx.alloc_matrix(threads, n.div_ceil(threads), |t| node_of_thread(t, nodes));
        let rank_b: HMatrix<f64> =
            ctx.alloc_matrix(threads, n.div_ceil(threads), |t| node_of_thread(t, nodes));
        // The adjacency structure is read-only after this init; each block's
        // slice is homed on its owner so only rank reads travel.
        let offsets = ctx.alloc_array::<u64>(n + 1, NodeId(0));
        offsets.write_slice(ctx, 0, &edges.offsets);
        let sources = ctx.alloc_array::<u64>(edges.sources.len().max(1), NodeId(0));
        if !edges.sources.is_empty() {
            sources.write_slice(ctx, 0, &edges.sources);
        }
        let out_degree = ctx.alloc_array::<u64>(n, NodeId(0));
        out_degree.write_slice(ctx, 0, &edges.out_degree);
        let barrier = JBarrier::new(ctx, threads, NodeId(0));

        let block_of = move |v: usize| {
            let cols = n.div_ceil(threads);
            let t = v * threads / ((cols * threads).max(1));
            // Blocks are `block_range` blocks, not fixed-stride rows; map by
            // scanning from the estimate (at most one step off).
            let mut t = t.min(threads - 1);
            loop {
                let (s, e) = block_range(n, threads, t);
                if v < s {
                    t -= 1;
                } else if v >= e {
                    t += 1;
                } else {
                    return (t, v - s);
                }
            }
        };

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = barrier.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let (start, end) = block_range(n, threads, t);
                let per_edge = worker.estimate(&edge_mix());
                // Every thread initialises its own block in both buffers.
                let init = vec![1.0 / n as f64; end - start];
                rank_a.row(worker, t).write_slice(worker, 0, &init);
                rank_b.row(worker, t).write_slice(worker, 0, &init);
                // Pin the read-only adjacency of this block once: offsets
                // and lists never change, so the cached pages stay valid
                // until the first barrier.
                let first = offsets.get(worker, start);
                let last = offsets.get(worker, end);
                let my_offsets = offsets.read_slice(worker, start..end + 1);
                let my_sources = sources.read_slice(worker, first as usize..last as usize);
                barrier.arrive(worker);

                let (mut cur, mut next) = (rank_a, rank_b);
                for _ in 0..params.iterations {
                    for v in start..end {
                        let began = worker.now();
                        let lo = (my_offsets[v - start] - first) as usize;
                        let hi = (my_offsets[v - start + 1] - first) as usize;
                        let mut acc = 0.0;
                        for &u in &my_sources[lo..hi] {
                            let (ub, uo) = block_of(u as usize);
                            let rank = cur.get(worker, ub, uo);
                            let deg = out_degree.get(worker, u as usize).max(1);
                            acc += rank / deg as f64;
                        }
                        let value = (1.0 - DAMPING) / n as f64 + DAMPING * acc;
                        next.put(worker, t, v - start, value);
                        worker.charge_iters(&per_edge, (hi - lo) as u64);
                        worker.record_serving_op(worker.now() - began);
                    }
                    std::mem::swap(&mut cur, &mut next);
                    barrier.arrive(worker);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // Fixed-order final sweep over the buffer holding the last result.
        let finals = if params.iterations % 2 == 0 {
            rank_a
        } else {
            rank_b
        };
        let mut ranks = Vec::with_capacity(n);
        for t in 0..threads {
            let (s, e) = block_range(n, threads, t);
            ranks.extend(finals.row(ctx, t).read_slice(ctx, 0..e - s));
        }
        let (digest, hub_rank) = digest_of(&ranks);
        PageRankResult { digest, hub_rank }
    })
}

impl Benchmark for PageRankParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::PageRank
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.digest, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn edge_generation_is_seed_deterministic() {
        let params = PageRankParams::quick();
        let a = generate_edges(&params);
        let b = generate_edges(&params);
        assert_eq!(a, b);
        let c = generate_edges(&PageRankParams {
            seed: params.seed + 1,
            ..params
        });
        assert_ne!(a, c, "a different seed must draw a different graph");
        // Structural sanity: offsets are monotone and cover the edge list,
        // every vertex has at least one in-edge, and the edge budget matches
        // the configured average degree band.
        assert_eq!(a.offsets.len(), params.vertices + 1);
        assert_eq!(*a.offsets.last().unwrap() as usize, a.sources.len());
        for v in 0..params.vertices {
            assert!(a.offsets[v] < a.offsets[v + 1]);
        }
        assert!(a.sources.len() >= params.vertices);
        assert!(a.sources.len() <= params.vertices * 2 * params.degree);
        assert_eq!(
            a.out_degree.iter().sum::<u64>() as usize,
            a.sources.len(),
            "out-degrees must count every edge exactly once"
        );
    }

    #[test]
    fn hubs_dominate_the_out_degrees() {
        let params = PageRankParams::quick();
        let edges = generate_edges(&params);
        let hubs = params.vertices / 16;
        let hub_edges: u64 = edges.out_degree[..hubs].iter().sum();
        let total: u64 = edges.out_degree.iter().sum();
        assert!(
            hub_edges * 3 > total,
            "hub set carries only {hub_edges} of {total} edges"
        );
    }

    #[test]
    fn parallel_matches_sequential_for_every_protocol() {
        let params = PageRankParams::quick();
        let expected = sequential(&params);
        for protocol in ProtocolKind::all_extended() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                let tolerance = expected.digest.abs().max(1.0) * 1e-12;
                assert!(
                    (out.result.digest - expected.digest).abs() <= tolerance,
                    "{protocol:?}/{nodes} nodes: {} vs {}",
                    out.result.digest,
                    expected.digest
                );
                assert!((out.result.hub_rank - expected.hub_rank).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn rank_mass_is_conserved_within_damping_leak() {
        // With dangling-vertex mass leaking, total rank stays in (0, 1].
        let params = PageRankParams::quick();
        let r = sequential(&params);
        assert!(r.digest > 0.0);
        assert!(
            r.hub_rank > 1.0 / params.vertices as f64,
            "hubs must gain rank"
        );
    }

    #[test]
    fn irregular_reads_produce_remote_traffic_and_serving_ops() {
        let params = PageRankParams::quick();
        let out = run(config(4, ProtocolKind::JavaPf), &params);
        let total = out.report.total_stats();
        assert!(total.page_loads > 0, "irregular reads must fetch pages");
        assert_eq!(
            total.serving_ops as usize,
            params.vertices * params.iterations,
            "one serving op per vertex update"
        );
        assert!(out.report.serving_p99 > VTime::ZERO);
    }

    #[test]
    fn benchmark_trait_reports_figure_nine() {
        let params = PageRankParams::quick();
        assert_eq!(params.name().figure(), 9);
        let (digest, _) = params.execute(config(2, ProtocolKind::JavaAd));
        let expected = sequential(&params);
        assert!((digest - expected.digest).abs() <= expected.digest.abs() * 1e-12);
    }
}
