//! Shared helpers for the benchmark programs.

use hyperion::{HyperionConfig, NodeId, ProtocolKind, RunReport};

/// Contiguous block `[start, end)` owned by worker `idx` out of `parts` when
/// `total` items are split as evenly as possible (the first `total % parts`
/// workers get one extra item).
///
/// # Panics
/// Panics if `parts` is zero or `idx >= parts`.
pub fn block_range(total: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts > 0, "cannot split work over zero workers");
    assert!(
        idx < parts,
        "worker index {idx} out of range for {parts} workers"
    );
    let base = total / parts;
    let extra = total % parts;
    let start = idx * base + idx.min(extra);
    let len = base + usize::from(idx < extra);
    (start, start + len)
}

/// Node that worker thread `idx` is placed on in the standard SPMD setup
/// (one computation thread per node, wrapping round-robin when more threads
/// than nodes are requested).
pub fn node_of_thread(idx: usize, nodes: usize) -> NodeId {
    NodeId((idx % nodes) as u32)
}

/// Parse a protocol name as used on example, bench and CI command lines.
///
/// Accepts the paper's full names (`java_ic`, `java_pf`, the extension's
/// `java_ad`) and the short forms `ic` / `pf` / `ad` / `adaptive`.
pub fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    match s {
        "ic" | "java_ic" => Some(ProtocolKind::JavaIc),
        "pf" | "java_pf" => Some(ProtocolKind::JavaPf),
        "ad" | "java_ad" | "adaptive" => Some(ProtocolKind::JavaAd),
        _ => None,
    }
}

/// The protocols every app is exercised under by the adaptive comparison
/// (Figure 6) and the CI bench gate: the paper's two plus `java_ad`.
pub fn protocols_under_test() -> [ProtocolKind; 3] {
    ProtocolKind::all_extended()
}

/// How a kernel accesses shared data through the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Per-element accesses with the row indirection re-read through the
    /// DSM — the faithful compiled-Java behaviour the paper studies.
    Element,
    /// Locality-aware: row handles cached once per thread
    /// (`HMatrix::rows_view`) and communication performed with bulk slice
    /// transfers, so access detection is paid per page instead of per
    /// element.
    Bulk,
}

impl AccessMode {
    /// Short lower-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Element => "element",
            AccessMode::Bulk => "bulk",
        }
    }
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Names of the benchmarks: the paper's five (in figure order) plus the
/// serving-workload extension family (figure 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkName {
    /// Fig. 1 — Riemann-sum estimation of π.
    Pi,
    /// Fig. 2 — Jacobi heat diffusion.
    Jacobi,
    /// Fig. 3 — Barnes-Hut N-body.
    Barnes,
    /// Fig. 4 — branch-and-bound TSP.
    Tsp,
    /// Fig. 5 — all-pairs shortest paths.
    Asp,
    /// Fig. 9 — Zipf-skewed sharded key-value store (serving extension).
    KvStore,
    /// Fig. 9 — PageRank over a seeded edge list (serving extension).
    PageRank,
}

impl BenchmarkName {
    /// The paper's five benchmarks in figure order.
    ///
    /// The serving extension apps are deliberately excluded: the fig6–8
    /// gates reproduce the paper's figures over exactly these five, and the
    /// serving family has its own sweep ([`BenchmarkName::serving`]).
    pub fn all() -> [BenchmarkName; 5] {
        [
            BenchmarkName::Pi,
            BenchmarkName::Jacobi,
            BenchmarkName::Barnes,
            BenchmarkName::Tsp,
            BenchmarkName::Asp,
        ]
    }

    /// The serving-workload extension apps (figure 9).
    pub fn serving() -> [BenchmarkName; 2] {
        [BenchmarkName::KvStore, BenchmarkName::PageRank]
    }

    /// Every benchmark the harness knows: the paper's five plus serving.
    pub fn all_extended() -> [BenchmarkName; 7] {
        [
            BenchmarkName::Pi,
            BenchmarkName::Jacobi,
            BenchmarkName::Barnes,
            BenchmarkName::Tsp,
            BenchmarkName::Asp,
            BenchmarkName::KvStore,
            BenchmarkName::PageRank,
        ]
    }

    /// The figure number for this benchmark (the paper's 1–5; the serving
    /// extension apps share the extension figure 9).
    pub fn figure(self) -> usize {
        match self {
            BenchmarkName::Pi => 1,
            BenchmarkName::Jacobi => 2,
            BenchmarkName::Barnes => 3,
            BenchmarkName::Tsp => 4,
            BenchmarkName::Asp => 5,
            BenchmarkName::KvStore | BenchmarkName::PageRank => 9,
        }
    }

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchmarkName::Pi => "Pi",
            BenchmarkName::Jacobi => "Jacobi",
            BenchmarkName::Barnes => "Barnes-Hut",
            BenchmarkName::Tsp => "TSP",
            BenchmarkName::Asp => "ASP",
            BenchmarkName::KvStore => "KVStore",
            BenchmarkName::PageRank => "PageRank",
        }
    }
}

impl std::fmt::Display for BenchmarkName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A benchmark program parameterisation that the figure harness can run
/// under an arbitrary cluster / protocol / node-count configuration.
pub trait Benchmark: Send + Sync {
    /// Which of the paper's benchmarks this is.
    fn name(&self) -> BenchmarkName;

    /// Execute the benchmark under `config` and return a scalar digest of the
    /// computed answer (used for cross-configuration result checking) plus
    /// the run report.
    fn execute(&self, config: HyperionConfig) -> (f64, RunReport);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_everything_without_overlap() {
        for total in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 12] {
                let mut covered = 0;
                let mut prev_end = 0;
                for idx in 0..parts {
                    let (s, e) = block_range(total, parts, idx);
                    assert!(s <= e);
                    assert_eq!(s, prev_end, "blocks must be contiguous");
                    prev_end = e;
                    covered += e - s;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn block_range_is_balanced() {
        for idx in 0..5 {
            let (s, e) = block_range(23, 5, idx);
            let len = e - s;
            assert!(len == 4 || len == 5, "unbalanced block {len}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_range_rejects_bad_index() {
        block_range(10, 2, 2);
    }

    #[test]
    fn protocol_parsing_accepts_short_and_paper_names() {
        assert_eq!(parse_protocol("ic"), Some(ProtocolKind::JavaIc));
        assert_eq!(parse_protocol("java_ic"), Some(ProtocolKind::JavaIc));
        assert_eq!(parse_protocol("pf"), Some(ProtocolKind::JavaPf));
        assert_eq!(parse_protocol("java_pf"), Some(ProtocolKind::JavaPf));
        assert_eq!(parse_protocol("ad"), Some(ProtocolKind::JavaAd));
        assert_eq!(parse_protocol("adaptive"), Some(ProtocolKind::JavaAd));
        assert_eq!(parse_protocol("java_xx"), None);
        assert_eq!(protocols_under_test().len(), 3);
    }

    #[test]
    fn node_of_thread_wraps() {
        assert_eq!(node_of_thread(0, 4), NodeId(0));
        assert_eq!(node_of_thread(3, 4), NodeId(3));
        assert_eq!(node_of_thread(5, 4), NodeId(1));
    }

    #[test]
    fn benchmark_names_enumerate_the_five_figures() {
        let all = BenchmarkName::all();
        assert_eq!(all.len(), 5);
        let figures: Vec<usize> = all.iter().map(|b| b.figure()).collect();
        assert_eq!(figures, vec![1, 2, 3, 4, 5]);
        assert_eq!(format!("{}", BenchmarkName::Barnes), "Barnes-Hut");
    }

    #[test]
    fn serving_names_share_figure_nine() {
        let serving = BenchmarkName::serving();
        assert_eq!(serving.len(), 2);
        assert!(serving.iter().all(|b| b.figure() == 9));
        assert_eq!(format!("{}", BenchmarkName::KvStore), "KVStore");
        assert_eq!(format!("{}", BenchmarkName::PageRank), "PageRank");
        // The extended enumeration is the paper's five plus serving, with no
        // duplicates.
        let all = BenchmarkName::all_extended();
        assert_eq!(all.len(), 7);
        for pair in all.iter().enumerate() {
            for other in all.iter().skip(pair.0 + 1) {
                assert_ne!(pair.1, other);
            }
        }
    }
}
