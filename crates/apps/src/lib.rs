//! # hyperion-apps
//!
//! The five benchmark programs of *"Remote object detection in cluster-based
//! Java"* (Antoniu & Hatcher, JavaPDC/IPDPS 2001, §4.1), written against the
//! Hyperion-RS runtime API so that — exactly as in the paper — the *same
//! program* runs unchanged under either access-detection protocol and on
//! either modelled cluster:
//!
//! * [`pi`] — embarrassingly parallel Riemann sum (paper: 50 M values);
//! * [`jacobi`] — 2-D heat diffusion on a mesh, block-of-rows decomposition
//!   (paper: 1024×1024, 100 steps);
//! * [`barnes`] — Barnes-Hut gravitational N-body with per-step tree builds
//!   and dynamic body assignment (paper: 16 K bodies, 6 steps);
//! * [`tsp`] — branch-and-bound travelling salesperson with a central work
//!   queue and a shared best bound (paper: 17 cities);
//! * [`asp`] — all-pairs shortest paths, Floyd-Warshall with a per-iteration
//!   pivot-row broadcast (paper: 2000-vertex graph).
//!
//! The serving-workload extension (figure 9) adds a sixth family that looks
//! like production traffic rather than a barrier-phased kernel:
//!
//! * [`kvstore`] — a sharded key-value/session store hammered with
//!   Zipf-skewed reads and a monitor-protected write tail;
//! * [`graph`] — PageRank over a seeded hub-skewed edge list, with
//!   irregular, non-strided page access.
//!
//! Each module also contains a plain sequential reference implementation the
//! tests use to verify that the distributed execution computes the right
//! answer, and every benchmark implements the [`Benchmark`] trait so the
//! figure-regeneration harness can sweep them uniformly.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod asp;
pub mod barnes;
pub mod common;
pub mod graph;
pub mod jacobi;
pub mod kvstore;
pub mod pi;
pub mod tsp;

pub use common::{block_range, node_of_thread, AccessMode, Benchmark, BenchmarkName};
