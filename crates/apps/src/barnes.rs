//! Barnes-Hut: gravitational N-body simulation (Fig. 3).
//!
//! The paper (§4.1): "Barnes is a gravitational N-body simulation adapted
//! from the C code distributed with the SPLASH-2 benchmark suite.  We used
//! 16K bodies and ran the simulation for 6 timesteps.  The communication
//! pattern in Barnes is irregular as bodies move during the simulation
//! (causing body-body interactions to change) and the program uses a
//! load-balancing algorithm that dynamically assigns bodies to threads for
//! processing."
//!
//! Structure of one timestep (as in the adapted SPLASH-2 code):
//!
//! 1. **Tree build** — one thread rebuilds the octree from the current body
//!    positions and publishes it in shared memory; everyone else waits at a
//!    barrier.
//! 2. **Force computation** — bodies are handed out in chunks through a
//!    monitor-protected counter (the dynamic load balancing the paper
//!    mentions); each thread walks the shared octree for its bodies and
//!    stores the resulting accelerations in a shared vector.
//! 3. **Update** — each thread advances the velocities and positions of the
//!    block of bodies it owns (leapfrog integration), then everyone meets at
//!    the barrier again.
//!
//! Because the octree and the acceleration vector are shared objects that
//! every node re-caches after each monitor acquisition, the program's
//! communication grows quickly with the node count — the behaviour behind
//! the flattening curves of the paper's Fig. 3.

use hyperion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{block_range, node_of_thread, Benchmark, BenchmarkName};

/// Opening criterion of the Barnes-Hut approximation.
pub const THETA: f64 = 0.6;
/// Gravitational softening (avoids singular forces at tiny distances).
pub const SOFTENING: f64 = 1e-3;
/// Integration timestep.
pub const DT: f64 = 0.025;

/// Parameters of the Barnes-Hut benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarnesParams {
    /// Number of bodies.
    pub bodies: usize,
    /// Number of timesteps.
    pub steps: usize,
    /// Random seed for the initial distribution.
    pub seed: u64,
}

impl BarnesParams {
    /// The paper's problem size: 16 K bodies, 6 timesteps.
    pub fn paper() -> Self {
        BarnesParams {
            bodies: 16 * 1024,
            steps: 6,
            seed: 1999,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        BarnesParams {
            bodies: 1024,
            steps: 3,
            seed: 1999,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        BarnesParams {
            bodies: 96,
            steps: 2,
            seed: 3,
        }
    }
}

/// Result of a Barnes-Hut run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BarnesResult {
    /// Sum of the absolute values of all position coordinates (digest).
    pub position_digest: f64,
    /// Total kinetic energy after the last step.
    pub kinetic_energy: f64,
}

/// A body's state (used by the generator and the sequential reference).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Body {
    /// Mass.
    pub mass: f64,
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
}

/// Generate the initial body distribution (uniform cube with small random
/// velocities; deterministic for a given seed).
pub fn generate_bodies(params: &BarnesParams) -> Vec<Body> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.bodies)
        .map(|_| Body {
            mass: 1.0 / params.bodies as f64,
            pos: [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ],
            vel: [
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
            ],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Octree construction.  The tree is always built locally by one thread (plain
// data structures) and then, in the distributed version, serialised into
// shared arrays for the other nodes to traverse.
// ---------------------------------------------------------------------------

/// `f64` slots per serialised tree node: mass, com xyz, centre xyz, half.
const NODE_F_SLOTS: usize = 8;
/// `i64` slots per serialised tree node: 8 children + leaf body index.
const NODE_I_SLOTS: usize = 9;

#[derive(Clone, Debug)]
struct TreeNode {
    center: [f64; 3],
    half: f64,
    mass: f64,
    com: [f64; 3],
    children: [i64; 8],
    body: i64,
}

impl TreeNode {
    fn new(center: [f64; 3], half: f64) -> Self {
        TreeNode {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [-1; 8],
            body: -1,
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c < 0)
    }
}

fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
    let mut o = 0;
    for d in 0..3 {
        if p[d] >= center[d] {
            o |= 1 << d;
        }
    }
    o
}

fn child_center(center: &[f64; 3], half: f64, o: usize) -> [f64; 3] {
    let q = half / 2.0;
    [
        center[0] + if o & 1 != 0 { q } else { -q },
        center[1] + if o & 2 != 0 { q } else { -q },
        center[2] + if o & 4 != 0 { q } else { -q },
    ]
}

fn insert(nodes: &mut Vec<TreeNode>, positions: &[[f64; 3]], node: usize, body: usize) {
    if nodes[node].is_leaf() {
        if nodes[node].body < 0 {
            nodes[node].body = body as i64;
            return;
        }
        // Occupied leaf: split it by pushing the resident body down first.
        let resident = nodes[node].body as usize;
        nodes[node].body = -1;
        push_down(nodes, positions, node, resident);
    }
    push_down(nodes, positions, node, body);
}

fn push_down(nodes: &mut Vec<TreeNode>, positions: &[[f64; 3]], node: usize, body: usize) {
    let o = octant(&nodes[node].center, &positions[body]);
    let child = nodes[node].children[o];
    if child < 0 {
        let cc = child_center(&nodes[node].center, nodes[node].half, o);
        let ch = nodes[node].half / 2.0;
        nodes.push(TreeNode::new(cc, ch));
        let idx = nodes.len() - 1;
        nodes[node].children[o] = idx as i64;
        insert(nodes, positions, idx, body);
    } else {
        insert(nodes, positions, child as usize, body);
    }
}

#[allow(clippy::needless_range_loop)]
fn compute_mass(nodes: &mut [TreeNode], node: usize, positions: &[[f64; 3]], masses: &[f64]) {
    if nodes[node].is_leaf() {
        let b = nodes[node].body;
        if b >= 0 {
            let b = b as usize;
            nodes[node].mass = masses[b];
            nodes[node].com = positions[b];
        }
        return;
    }
    let children = nodes[node].children;
    let mut mass = 0.0;
    let mut weighted = [0.0; 3];
    for &c in &children {
        if c >= 0 {
            compute_mass(nodes, c as usize, positions, masses);
            let child = &nodes[c as usize];
            mass += child.mass;
            for d in 0..3 {
                weighted[d] += child.mass * child.com[d];
            }
        }
    }
    if mass > 0.0 {
        for w in &mut weighted {
            *w /= mass;
        }
    }
    nodes[node].mass = mass;
    nodes[node].com = weighted;
}

/// Build the octree over the given positions; node 0 is the root.
fn build_tree(positions: &[[f64; 3]], masses: &[f64]) -> Vec<TreeNode> {
    assert!(!positions.is_empty());
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in positions {
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let center = [
        (lo[0] + hi[0]) / 2.0,
        (lo[1] + hi[1]) / 2.0,
        (lo[2] + hi[2]) / 2.0,
    ];
    let half = (0..3)
        .map(|d| (hi[d] - lo[d]) / 2.0)
        .fold(1e-9f64, f64::max)
        * 1.0001;

    let mut nodes = vec![TreeNode::new(center, half)];
    for b in 0..positions.len() {
        insert(&mut nodes, positions, 0, b);
    }
    compute_mass(&mut nodes, 0, positions, masses);
    nodes
}

/// Flatten the tree into the serialised layout shared between the sequential
/// reference and the distributed version (same bits → same physics).
fn serialise_tree(nodes: &[TreeNode]) -> (Vec<f64>, Vec<i64>) {
    let mut f = vec![0.0; nodes.len() * NODE_F_SLOTS];
    let mut i = vec![-1i64; nodes.len() * NODE_I_SLOTS];
    for (n, node) in nodes.iter().enumerate() {
        let fo = n * NODE_F_SLOTS;
        f[fo] = node.mass;
        f[fo + 1] = node.com[0];
        f[fo + 2] = node.com[1];
        f[fo + 3] = node.com[2];
        f[fo + 4] = node.center[0];
        f[fo + 5] = node.center[1];
        f[fo + 6] = node.center[2];
        f[fo + 7] = node.half;
        let io = n * NODE_I_SLOTS;
        i[io..io + 8].copy_from_slice(&node.children);
        i[io + 8] = node.body;
    }
    (f, i)
}

/// Read access to a serialised octree plus visit accounting.
///
/// Both executions use the same walker ([`accel_from_tree`]): the sequential
/// reference reads plain vectors, the distributed version reads the shared
/// arrays through a thread context (paying the protocol's access-detection
/// costs as it goes).  Same walker, same bits, same physics.
trait TreeReader {
    /// Read the `idx`-th `f64` slot of the serialised tree.
    fn f(&mut self, idx: usize) -> f64;
    /// Read the `idx`-th `i64` slot of the serialised tree.
    fn i(&mut self, idx: usize) -> i64;
    /// Called once per visited node; `interacted` tells whether the node
    /// contributed a body-cell interaction.
    fn visited(&mut self, interacted: bool);
}

/// Tree reader over local vectors (sequential reference and unit tests).
struct LocalTreeReader<'a> {
    f: &'a [f64],
    i: &'a [i64],
}

impl TreeReader for LocalTreeReader<'_> {
    fn f(&mut self, idx: usize) -> f64 {
        self.f[idx]
    }
    fn i(&mut self, idx: usize) -> i64 {
        self.i[idx]
    }
    fn visited(&mut self, _interacted: bool) {}
}

/// Acceleration on the body at `pos` (index `self_idx`), computed by walking
/// a serialised tree through a [`TreeReader`].
fn accel_from_tree(pos: [f64; 3], self_idx: i64, reader: &mut impl TreeReader) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    let mut stack = vec![0usize];
    while let Some(n) = stack.pop() {
        let fo = n * NODE_F_SLOTS;
        let mass = reader.f(fo);
        if mass <= 0.0 {
            reader.visited(false);
            continue;
        }
        let com = [reader.f(fo + 1), reader.f(fo + 2), reader.f(fo + 3)];
        let body = reader.i(n * NODE_I_SLOTS + 8);
        let dx = [com[0] - pos[0], com[1] - pos[1], com[2] - pos[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];

        let interact = if body >= 0 {
            // Leaf: direct interaction unless it is the body itself.
            body != self_idx
        } else {
            // Internal node: use the centre of mass if the cell looks small
            // enough from here, otherwise open it.
            let half = reader.f(fo + 7);
            let size = 2.0 * half;
            if size * size < THETA * THETA * r2 {
                true
            } else {
                let io = n * NODE_I_SLOTS;
                for k in 0..8 {
                    let c = reader.i(io + k);
                    if c >= 0 {
                        stack.push(c as usize);
                    }
                }
                false
            }
        };
        reader.visited(interact);
        if interact {
            let dist2 = r2 + SOFTENING * SOFTENING;
            let inv = 1.0 / dist2.sqrt();
            let inv3 = inv * inv * inv;
            for d in 0..3 {
                acc[d] += mass * inv3 * dx[d];
            }
        }
    }
    acc
}

/// Digest of a set of bodies: (Σ|position coords|, kinetic energy).
pub fn digest(bodies: &[Body]) -> (f64, f64) {
    let mut pos_sum = 0.0;
    let mut ke = 0.0;
    for b in bodies {
        pos_sum += b.pos[0].abs() + b.pos[1].abs() + b.pos[2].abs();
        ke += 0.5 * b.mass * (b.vel[0] * b.vel[0] + b.vel[1] * b.vel[1] + b.vel[2] * b.vel[2]);
    }
    (pos_sum, ke)
}

/// Sequential reference implementation (identical phases and arithmetic).
#[allow(clippy::needless_range_loop)]
pub fn sequential(params: &BarnesParams) -> BarnesResult {
    let mut bodies = generate_bodies(params);
    let n = bodies.len();
    for _ in 0..params.steps {
        let positions: Vec<[f64; 3]> = bodies.iter().map(|b| b.pos).collect();
        let masses: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = build_tree(&positions, &masses);
        let (tf, ti) = serialise_tree(&tree);

        let mut acc = vec![[0.0f64; 3]; n];
        for (b, a) in acc.iter_mut().enumerate() {
            let mut reader = LocalTreeReader { f: &tf, i: &ti };
            *a = accel_from_tree(positions[b], b as i64, &mut reader);
        }
        for (b, body) in bodies.iter_mut().enumerate() {
            for d in 0..3 {
                body.vel[d] += acc[b][d] * DT;
                body.pos[d] += body.vel[d] * DT;
            }
        }
    }
    let (position_digest, kinetic_energy) = digest(&bodies);
    BarnesResult {
        position_digest,
        kinetic_energy,
    }
}

/// Per-node visit cost of the tree walk (distance/opening test).
fn visit_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 5.0)
        .with(Op::FpMul, 4.0)
        .with(Op::Load, 6.0)
        .with(Op::IntAlu, 4.0)
        .with(Op::Branch, 3.0)
}

/// Additional cost of one accepted body-cell interaction.
fn interact_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 4.0)
        .with(Op::FpMul, 7.0)
        .with(Op::FpDiv, 1.0)
        .with(Op::Load, 2.0)
        .with(Op::Store, 3.0)
        .with(Op::IntAlu, 2.0)
        .with(Op::Branch, 1.0)
}

/// Cost of inserting one body into the octree (amortised per level).
fn insert_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 3.0)
        .with(Op::Load, 6.0)
        .with(Op::Store, 2.0)
        .with(Op::IntAlu, 8.0)
        .with(Op::Branch, 5.0)
}

/// Per-body leapfrog update cost.
fn update_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 6.0)
        .with(Op::FpMul, 6.0)
        .with(Op::Load, 9.0)
        .with(Op::Store, 6.0)
        .with(Op::IntAlu, 3.0)
        .with(Op::Branch, 1.0)
}

/// Slots per body object: mass, pos xyz, vel xyz, acc xyz, 2 pad.
const BODY_SLOTS: usize = 12;
/// Field offsets within a body object.
const B_MASS: usize = 0;
const B_POS: usize = 1;
const B_VEL: usize = 4;
const B_ACC: usize = 7;

hyperion::object_layout! {
    /// Metadata of the published octree.
    pub struct TreeMeta {
        /// Number of serialised tree nodes currently valid in the shared
        /// tree arrays.
        SIZE: u64,
    }
}

/// Tree reader over the shared arrays: every slot read is a DSM access on the
/// calling thread's node, and the walk's compute cost is charged per visited
/// node / interaction.
struct DsmTreeReader<'a, 'b> {
    worker: &'a mut ThreadCtx,
    tree_f: &'b HArray<f64>,
    tree_i: &'b HArray<i64>,
    per_visit: WorkEstimate,
    per_interact: WorkEstimate,
}

impl TreeReader for DsmTreeReader<'_, '_> {
    fn f(&mut self, idx: usize) -> f64 {
        self.tree_f.get(self.worker, idx)
    }
    fn i(&mut self, idx: usize) -> i64 {
        self.tree_i.get(self.worker, idx)
    }
    fn visited(&mut self, interacted: bool) {
        self.worker.charge_work(&self.per_visit);
        if interacted {
            self.worker.charge_work(&self.per_interact);
        }
    }
}

/// Run the Barnes-Hut benchmark under `config`.
#[allow(clippy::needless_range_loop)]
pub fn run(config: HyperionConfig, params: &BarnesParams) -> RunOutcome<BarnesResult> {
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let n = params.bodies;
    let steps = params.steps;
    let initial = generate_bodies(params);
    // Upper bound on octree nodes for distinct positions: every internal node
    // has ≥ 2 descendants holding bodies, but splits can chain; 4N + 64 is a
    // comfortable bound for the uniform distributions used here.
    let max_tree_nodes = 4 * n + 64;
    let chunk = (n / (threads * 8)).max(1) as u64;

    runtime.run(move |ctx| {
        // Each body is an object (one row of a Java-style 2-D array) homed on
        // the node of the thread that owns its block — the SPLASH-2 style
        // body distribution.
        let owner_of_body = move |b: usize| {
            let mut owner = threads - 1;
            for t in 0..threads {
                let (s, e) = block_range(n, threads, t);
                if b >= s && b < e {
                    owner = t;
                    break;
                }
            }
            node_of_thread(owner, nodes)
        };
        let bodies_m: HMatrix<f64> = ctx.alloc_matrix(n, BODY_SLOTS, owner_of_body);

        // The shared octree (rebuilt every step by thread 0, homed on node 0).
        let tree_f: HArray<f64> = ctx.alloc_array(max_tree_nodes * NODE_F_SLOTS, NodeId(0));
        let tree_i: HArray<i64> = ctx.alloc_array(max_tree_nodes * NODE_I_SLOTS, NodeId(0));
        let tree_size: HStruct<TreeMeta> = ctx.alloc_struct(NodeId(0));

        // Work distribution and synchronisation.
        let barrier = JBarrier::new(ctx, threads, NodeId(0));
        let chunk_counters: Vec<SharedCounter> = (0..steps)
            .map(|_| SharedCounter::new(ctx, NodeId(0), 0))
            .collect();

        // Initial conditions are written by main, one bulk write per body
        // row; writes to remote body objects are flushed when the worker
        // threads are started.
        let init_rows = bodies_m.rows_view(ctx);
        for (b, body) in initial.iter().enumerate() {
            let mut state = [0.0f64; B_ACC + 3];
            state[B_MASS] = body.mass;
            state[B_POS..B_POS + 3].copy_from_slice(&body.pos);
            state[B_VEL..B_VEL + 3].copy_from_slice(&body.vel);
            init_rows.row(b).write_slice(ctx, 0, &state);
        }

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = barrier.clone();
            let chunk_counters = chunk_counters.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let per_visit = worker.estimate(&visit_mix());
                let per_interact = worker.estimate(&interact_mix());
                let per_insert = worker.estimate(&insert_mix());
                let per_update = worker.estimate(&update_mix());
                let (my_start, my_end) = block_range(n, threads, t);

                // Row handles are fetched once per thread; the references
                // never change, so the cache survives every barrier.
                let body_rows = bodies_m.rows_view(worker);

                for counter in chunk_counters.iter().take(steps) {
                    // ---- Phase 1: tree build (thread 0 only). ----
                    if t == 0 {
                        let mut positions = vec![[0.0f64; 3]; n];
                        let mut masses = vec![0.0f64; n];
                        for (b, p) in positions.iter_mut().enumerate() {
                            // One bulk read covers mass and position.
                            let head = body_rows.row(b).read_slice(worker, B_MASS..B_POS + 3);
                            masses[b] = head[B_MASS];
                            p.copy_from_slice(&head[B_POS..B_POS + 3]);
                        }
                        let tree = build_tree(&positions, &masses);
                        // Tree construction cost: one insertion path per body
                        // (≈ tree depth) plus the mass recursion.
                        let depth = (n as f64).log2().ceil().max(1.0) as u64 / 3 + 2;
                        worker.charge_iters(&per_insert, n as u64 * depth);
                        worker.charge_iters(&per_insert, tree.len() as u64);

                        assert!(
                            tree.len() <= max_tree_nodes,
                            "octree overflowed its shared arrays"
                        );
                        let (tf, ti) = serialise_tree(&tree);
                        // Publish the serialised tree with two bulk writes:
                        // the runtime ships whole pages either way, but the
                        // writer now pays detection per page, not per slot.
                        tree_f.write_slice(worker, 0, &tf);
                        tree_i.write_slice(worker, 0, &ti);
                        tree_size.put(worker, TreeMeta::SIZE, tree.len() as u64);
                    }
                    barrier.arrive(worker);

                    // ---- Phase 2: force computation, dynamic chunks. ----
                    loop {
                        let start = counter.next_chunk(worker, chunk) as usize;
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk as usize).min(n);
                        for b in start..end {
                            let row = body_rows.row(b);
                            let pos = [
                                row.get(worker, B_POS),
                                row.get(worker, B_POS + 1),
                                row.get(worker, B_POS + 2),
                            ];
                            // The tree walk reads the shared tree arrays and
                            // charges its compute as it goes.
                            let a = {
                                let mut reader = DsmTreeReader {
                                    worker: &mut *worker,
                                    tree_f: &tree_f,
                                    tree_i: &tree_i,
                                    per_visit,
                                    per_interact,
                                };
                                accel_from_tree(pos, b as i64, &mut reader)
                            };
                            for d in 0..3 {
                                row.put(worker, B_ACC + d, a[d]);
                            }
                        }
                    }
                    barrier.arrive(worker);

                    // ---- Phase 3: integrate the bodies this thread owns. ----
                    for b in my_start..my_end {
                        let row = body_rows.row(b);
                        for d in 0..3 {
                            let a = row.get(worker, B_ACC + d);
                            let v = row.get(worker, B_VEL + d) + a * DT;
                            row.put(worker, B_VEL + d, v);
                            let x = row.get(worker, B_POS + d) + v * DT;
                            row.put(worker, B_POS + d, x);
                        }
                        worker.charge_iters(&per_update, 1);
                    }
                    barrier.arrive(worker);
                }
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // Digest the final state (one bulk read per body row).
        let digest_rows = bodies_m.rows_view(ctx);
        let mut final_bodies = Vec::with_capacity(n);
        for b in 0..n {
            let row = digest_rows.row_view(ctx, b);
            final_bodies.push(Body {
                mass: row.get(B_MASS),
                pos: [row.get(B_POS), row.get(B_POS + 1), row.get(B_POS + 2)],
                vel: [row.get(B_VEL), row.get(B_VEL + 1), row.get(B_VEL + 2)],
            });
        }
        let (position_digest, kinetic_energy) = digest(&final_bodies);
        BarnesResult {
            position_digest,
            kinetic_energy,
        }
    })
}

impl Benchmark for BarnesParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::Barnes
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.position_digest, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn generated_bodies_are_deterministic_and_bounded() {
        let params = BarnesParams::quick();
        let a = generate_bodies(&params);
        let b = generate_bodies(&params);
        assert_eq!(a, b);
        assert_eq!(a.len(), params.bodies);
        for body in &a {
            assert!(body.mass > 0.0);
            for d in 0..3 {
                assert!(body.pos[d].abs() <= 1.0);
                assert!(body.vel[d].abs() <= 0.1);
            }
        }
    }

    #[test]
    fn tree_holds_every_body_exactly_once() {
        let params = BarnesParams::quick();
        let bodies = generate_bodies(&params);
        let positions: Vec<[f64; 3]> = bodies.iter().map(|b| b.pos).collect();
        let masses: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let tree = build_tree(&positions, &masses);

        let mut found = vec![false; bodies.len()];
        for node in &tree {
            if node.body >= 0 {
                assert!(node.is_leaf());
                assert!(!found[node.body as usize], "body stored twice");
                found[node.body as usize] = true;
            }
        }
        assert!(found.iter().all(|&f| f), "every body must be in the tree");

        // Total mass at the root equals the sum of body masses.
        let total: f64 = masses.iter().sum();
        assert!((tree[0].mass - total).abs() < 1e-12);
        assert!(tree.len() <= 4 * bodies.len() + 64);
    }

    #[test]
    fn serialised_tree_round_trips_through_the_walker() {
        // Two bodies on a diagonal: the acceleration on each must point
        // towards the other with equal magnitude (equal masses).
        let positions = vec![[-0.5, 0.0, 0.0], [0.5, 0.0, 0.0]];
        let masses = vec![0.5, 0.5];
        let tree = build_tree(&positions, &masses);
        let (tf, ti) = serialise_tree(&tree);
        let a0 = accel_from_tree(positions[0], 0, &mut LocalTreeReader { f: &tf, i: &ti });
        let a1 = accel_from_tree(positions[1], 1, &mut LocalTreeReader { f: &tf, i: &ti });
        assert!(a0[0] > 0.0 && a1[0] < 0.0);
        assert!((a0[0] + a1[0]).abs() < 1e-12);
        assert!(a0[1].abs() < 1e-12 && a0[2].abs() < 1e-12);
    }

    #[test]
    fn sequential_run_conserves_plausibility() {
        let result = sequential(&BarnesParams::quick());
        assert!(result.position_digest.is_finite());
        assert!(result.kinetic_energy.is_finite());
        assert!(result.kinetic_energy > 0.0);
    }

    #[test]
    fn parallel_matches_sequential_for_both_protocols() {
        let params = BarnesParams::quick();
        let expected = sequential(&params);
        for protocol in ProtocolKind::all() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                let rel = (out.result.position_digest - expected.position_digest).abs()
                    / expected.position_digest;
                assert!(
                    rel < 1e-9,
                    "{protocol:?}/{nodes}: digest {} vs {}",
                    out.result.position_digest,
                    expected.position_digest
                );
                let rel_ke = (out.result.kinetic_energy - expected.kinetic_energy).abs()
                    / expected.kinetic_energy;
                assert!(rel_ke < 1e-9);
            }
        }
    }

    #[test]
    fn dynamic_assignment_uses_the_shared_counter() {
        let params = BarnesParams::quick();
        let out = run(config(3, ProtocolKind::JavaPf), &params);
        let total = out.report.total_stats();
        // Chunk hand-out and barrier traffic imply plenty of monitor activity
        // and remote acquisitions from nodes 1 and 2.
        assert!(total.monitor_enters > (params.steps * 3) as u64);
        assert!(total.remote_monitor_acquires > 0);
        assert!(total.page_loads > 0);
        // Three barriers per step per thread.
        assert_eq!(total.barrier_waits, (3 * params.steps * 3) as u64);
    }

    #[test]
    fn java_pf_beats_java_ic_on_barnes() {
        // Enough bodies that the force computation dominates the chunk
        // hand-out and tree re-fetch costs (as with the paper's 16 K bodies).
        let params = BarnesParams {
            bodies: 1024,
            steps: 2,
            seed: 3,
        };
        let ic = run(config(2, ProtocolKind::JavaIc), &params)
            .report
            .execution_time
            .as_secs_f64();
        let pf = run(config(2, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        assert!(pf < ic, "pf={pf:.4}s should beat ic={ic:.4}s");
    }

    #[test]
    fn benchmark_trait_reports_figure_three() {
        let params = BarnesParams::quick();
        assert_eq!(params.name().figure(), 3);
        let (digest_value, report) = params.execute(config(2, ProtocolKind::JavaPf));
        assert!(digest_value.is_finite());
        assert_eq!(report.nodes, 2);
    }
}
