//! TSP: branch-and-bound travelling salesperson (Fig. 4).
//!
//! The paper (§4.1): "TSP is a branch-and-bound solution to the Traveling
//! Salesperson Problem, computing the shortest path connecting all cities in
//! a given set.  We solved a 17-city problem. [...] TSP uses a central queue
//! of work to be performed, as well as centrally storing the best solution
//! seen so far.  Of course, these 'central' data structures are stored on a
//! single node, protected by a Java monitor, and must be fetched by threads
//! executing on other nodes."
//!
//! The implementation mirrors that structure: the distance matrix, the queue
//! of partial tours and the global best bound all live on node 0; workers
//! repeatedly take a partial tour from the queue (under the queue monitor),
//! expand it with a depth-first search that prunes against the shared bound,
//! and publish improvements under the bound monitor.

use hyperion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{node_of_thread, Benchmark, BenchmarkName};

hyperion::object_layout! {
    /// The centrally stored best solution seen so far.
    pub struct BestBound {
        /// Length of the shortest complete tour found so far.
        BEST: i64,
    }
}

/// Parameters of the TSP benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TspParams {
    /// Number of cities.
    pub cities: usize,
    /// Seed of the random city-distance generator.
    pub seed: u64,
    /// Length of the partial tours placed in the central queue (the
    /// branch-and-bound "frontier depth").
    pub queue_depth: usize,
}

impl TspParams {
    /// The paper's problem size: 17 cities.
    pub fn paper() -> Self {
        TspParams {
            cities: 17,
            seed: 2001,
            queue_depth: 3,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        TspParams {
            cities: 11,
            seed: 2001,
            queue_depth: 3,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        TspParams {
            cities: 9,
            seed: 5,
            queue_depth: 2,
        }
    }
}

/// Result of a TSP run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TspResult {
    /// Length of the shortest tour found.
    pub best_tour: i64,
    /// Number of partial tours that were expanded from the central queue.
    pub tours_expanded: u64,
}

/// Generate a symmetric distance matrix for `cities` random points on a
/// 1000×1000 grid (rounded Euclidean distances).
pub fn generate_distances(params: &TspParams) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let pts: Vec<(f64, f64)> = (0..params.cities)
        .map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
        .collect();
    let n = params.cities;
    let mut d = vec![vec![0i64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            d[i][j] = (dx * dx + dy * dy).sqrt().round() as i64;
        }
    }
    d
}

/// Exhaustive sequential branch-and-bound reference.
pub fn sequential(params: &TspParams) -> i64 {
    let d = generate_distances(params);
    let n = params.cities;
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut best = i64::MAX;
    fn dfs(
        d: &[Vec<i64>],
        visited: &mut [bool],
        current: usize,
        count: usize,
        length: i64,
        best: &mut i64,
    ) {
        let n = d.len();
        if length >= *best {
            return;
        }
        if count == n {
            let total = length + d[current][0];
            if total < *best {
                *best = total;
            }
            return;
        }
        for next in 1..n {
            if !visited[next] {
                visited[next] = true;
                dfs(d, visited, next, count + 1, length + d[current][next], best);
                visited[next] = false;
            }
        }
    }
    dfs(&d, &mut visited, 0, 1, 0, &mut best);
    best
}

/// Enumerate the partial tours of length `depth + 1` (starting at city 0)
/// that seed the central work queue.
fn initial_tours(cities: usize, depth: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack = vec![vec![0usize]];
    while let Some(prefix) = stack.pop() {
        if prefix.len() == depth + 1 || prefix.len() == cities {
            out.push(prefix);
            continue;
        }
        for next in 1..cities {
            if !prefix.contains(&next) {
                let mut p = prefix.clone();
                p.push(next);
                stack.push(p);
            }
        }
    }
    out
}

/// Per-edge-relaxation instruction mix of the DFS inner step (distance
/// lookup, accumulate, bound compare, visited-set bookkeeping).
fn edge_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::IntAlu, 3.0)
        .with(Op::Load, 2.0)
        .with(Op::Branch, 2.0)
        .with(Op::CallOverhead, 0.5)
}

/// Run the TSP benchmark under `config`.
pub fn run(config: HyperionConfig, params: &TspParams) -> RunOutcome<TspResult> {
    assert!(params.cities >= 3, "TSP needs at least 3 cities");
    assert!(
        params.queue_depth + 1 < params.cities,
        "queue depth must leave work for the search phase"
    );
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let n = params.cities;
    let distances = generate_distances(params);
    let seeds = initial_tours(n, params.queue_depth);

    runtime.run(move |ctx| {
        // Central data structures, all homed on node 0 as in the paper.
        // Setup writes whole rows in bulk: detection per page, not per slot.
        let dist: HArray<i64> = ctx.alloc_array(n * n, NodeId(0));
        let flat: Vec<i64> = distances.iter().flatten().copied().collect();
        dist.write_slice(ctx, 0, &flat);

        // The work queue: a flat array of partial tours (each padded to n
        // entries, -1 terminated) plus a monitor-protected head index.
        let tour_len = n;
        let queue: HArray<i64> = ctx.alloc_array(seeds.len() * tour_len, NodeId(0));
        let flat_queue: Vec<i64> = seeds
            .iter()
            .flat_map(|tour| {
                (0..tour_len).map(|slot| tour.get(slot).map(|&c| c as i64).unwrap_or(-1))
            })
            .collect();
        queue.write_slice(ctx, 0, &flat_queue);
        let queue_head = SharedCounter::new(ctx, NodeId(0), 0);
        let num_seeds = seeds.len() as u64;

        // The global best bound.
        let best: HStruct<BestBound> = ctx.alloc_struct(NodeId(0));
        best.put(ctx, BestBound::BEST, i64::MAX);
        let best_monitor = ctx.new_monitor(NodeId(0));

        let expanded = ctx.alloc_array::<u64>(threads.max(1), NodeId(0));
        // All workers start pulling from the central queue together (the
        // Java program joins a start barrier after construction); without
        // it, thread start-up skew would let the first worker drain the
        // queue and the dynamic load balancing would be meaningless.
        let start_barrier = JBarrier::new(ctx, threads, NodeId(0));

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let queue_head = queue_head.clone();
            let best_monitor = best_monitor.clone();
            let start_barrier = start_barrier.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let per_edge = worker.estimate(&edge_mix());
                let mut my_expanded = 0u64;
                start_barrier.arrive(worker);

                loop {
                    // Take the next partial tour from the central queue.
                    let index = queue_head.next(worker);
                    if index >= num_seeds {
                        break;
                    }
                    my_expanded += 1;

                    // Read the partial tour from shared memory: one bulk
                    // read of the padded entry instead of per-slot gets.
                    let start_slot = index as usize * tour_len;
                    let entry = queue.read_slice(worker, start_slot..start_slot + tour_len);
                    let prefix: Vec<usize> = entry
                        .iter()
                        .take_while(|&&v| v >= 0)
                        .map(|&v| v as usize)
                        .collect();

                    // Read the current global bound (under its monitor).
                    let mut local_best: i64 =
                        best_monitor.synchronized(worker, |w| best.get(w, BestBound::BEST));

                    // Depth-first expansion.  The recursion state is local;
                    // every distance lookup goes through the DSM.
                    let mut visited = vec![false; n];
                    let mut length = 0i64;
                    for w in prefix.windows(2) {
                        length += dist.get(worker, w[0] * n + w[1]);
                        worker.charge_iters(&per_edge, 1);
                    }
                    for &c in &prefix {
                        visited[c] = true;
                    }
                    let start = *prefix.last().expect("non-empty prefix");
                    branch_and_bound(
                        worker,
                        &dist,
                        n,
                        &mut visited,
                        start,
                        prefix.len(),
                        length,
                        &mut local_best,
                        &per_edge,
                    );

                    // Publish an improved bound.
                    best_monitor.synchronized(worker, |w| {
                        let global = best.get(w, BestBound::BEST);
                        if local_best < global {
                            best.put(w, BestBound::BEST, local_best);
                        } else {
                            local_best = global;
                        }
                    });
                }
                expanded.put(worker, t, my_expanded);
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        let best_tour: i64 = best_monitor.synchronized(ctx, |c| best.get(c, BestBound::BEST));
        let tours_expanded: u64 = expanded.read_slice(ctx, ..).iter().sum();
        TspResult {
            best_tour,
            tours_expanded,
        }
    })
}

/// Depth-first branch-and-bound over the remaining cities.  The recursion
/// state (visited set, partial length) is thread-local; every distance
/// lookup goes through the DSM, exactly like the compiled Java code.
#[allow(clippy::too_many_arguments)]
fn branch_and_bound(
    worker: &mut ThreadCtx,
    dist: &HArray<i64>,
    n: usize,
    visited: &mut [bool],
    current: usize,
    count: usize,
    length: i64,
    best: &mut i64,
    per_edge: &WorkEstimate,
) {
    if length >= *best {
        return;
    }
    if count == n {
        let closing = dist.get(worker, current * n);
        worker.charge_iters(per_edge, 1);
        let total = length + closing;
        if total < *best {
            *best = total;
        }
        return;
    }
    for next in 1..n {
        if !visited[next] {
            let step = dist.get(worker, current * n + next);
            worker.charge_iters(per_edge, 1);
            let new_length = length + step;
            if new_length < *best {
                visited[next] = true;
                branch_and_bound(
                    worker,
                    dist,
                    n,
                    visited,
                    next,
                    count + 1,
                    new_length,
                    best,
                    per_edge,
                );
                visited[next] = false;
            }
        }
    }
}

impl Benchmark for TspParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::Tsp
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.best_tour as f64, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let params = TspParams::quick();
        let d = generate_distances(&params);
        for i in 0..params.cities {
            assert_eq!(d[i][i], 0);
            for j in 0..params.cities {
                assert_eq!(d[i][j], d[j][i]);
                assert!(d[i][j] >= 0);
            }
        }
    }

    #[test]
    fn initial_tours_partition_the_permutation_space() {
        let tours = initial_tours(6, 2);
        // 5 choices for the second city × 4 for the third.
        assert_eq!(tours.len(), 20);
        for t in &tours {
            assert_eq!(t[0], 0);
            assert_eq!(t.len(), 3);
            let mut sorted = t.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "tour must not repeat cities: {t:?}");
        }
    }

    #[test]
    fn sequential_finds_the_optimal_tour_on_a_known_instance() {
        // A 4-city instance small enough to verify by hand: the optimal tour
        // 0-1-2-3-0 has length 4+1+2+3 = 10 ... use brute force instead.
        let params = TspParams {
            cities: 7,
            seed: 11,
            queue_depth: 2,
        };
        let best = sequential(&params);
        // Brute-force check.
        let d = generate_distances(&params);
        let mut cities: Vec<usize> = (1..params.cities).collect();
        let mut brute = i64::MAX;
        permute(&mut cities, 0, &mut |perm| {
            let mut len = 0;
            let mut prev = 0;
            for &c in perm {
                len += d[prev][c];
                prev = c;
            }
            len += d[prev][0];
            if len < brute {
                brute = len;
            }
        });
        assert_eq!(best, brute);
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn parallel_matches_sequential_for_both_protocols() {
        let params = TspParams::quick();
        let expected = sequential(&params);
        for protocol in ProtocolKind::all() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                assert_eq!(
                    out.result.best_tour, expected,
                    "{protocol:?} on {nodes} nodes"
                );
                // Every seed tour is expanded exactly once across all workers.
                let seeds = initial_tours(params.cities, params.queue_depth).len() as u64;
                assert_eq!(out.result.tours_expanded, seeds);
            }
        }
    }

    #[test]
    fn central_structures_cause_remote_monitor_traffic() {
        let params = TspParams::quick();
        let out = run(config(4, ProtocolKind::JavaPf), &params);
        let total = out.report.total_stats();
        // Workers on nodes 1..3 must acquire the node-0 queue and bound
        // monitors remotely.
        assert!(total.remote_monitor_acquires > 0);
        assert!(total.page_loads > 0);
    }

    #[test]
    fn java_pf_beats_java_ic_on_tsp() {
        // Enough cities that the search dominates the queue/bound monitor
        // traffic (as with the paper's 17-city instance).
        let params = TspParams {
            cities: 11,
            seed: 5,
            queue_depth: 2,
        };
        let ic = run(config(2, ProtocolKind::JavaIc), &params)
            .report
            .execution_time
            .as_secs_f64();
        let pf = run(config(2, ProtocolKind::JavaPf), &params)
            .report
            .execution_time
            .as_secs_f64();
        assert!(pf < ic, "pf={pf:.4}s should beat ic={ic:.4}s");
    }

    #[test]
    fn benchmark_trait_reports_figure_four() {
        let params = TspParams::quick();
        assert_eq!(params.name().figure(), 4);
        let (digest, _) = params.execute(config(2, ProtocolKind::JavaIc));
        assert_eq!(digest, sequential(&params) as f64);
    }
}
