//! Pi: embarrassingly parallel Riemann-sum estimation of π (Fig. 1).
//!
//! The paper's description (§4.1): "The Pi program estimates π by calculating
//! a Riemann sum of 50 million values. [...] Pi is embarrassingly parallel,
//! with threads coordinating only to compute a global sum of the partial
//! sums computed by the threads for their share of the Riemann intervals."
//!
//! Each thread integrates `4 / (1 + x²)` over its block of intervals using
//! only stack-local values, then adds its partial sum into a shared
//! accumulator under a monitor.  Because the kernel performs (almost) no
//! object accesses, the two protocols perform essentially identically — the
//! paper's Fig. 1 shows the two curves on top of each other, and the tests
//! below assert exactly that property.

use hyperion::prelude::*;

use crate::common::{block_range, node_of_thread, Benchmark, BenchmarkName};

hyperion::object_layout! {
    /// The shared accumulator object (a Java class with one `double` field).
    pub struct GlobalSum {
        /// Sum of the partial sums published so far.
        SUM: f64,
    }
}

/// Parameters of the Pi benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PiParams {
    /// Number of Riemann intervals.
    pub intervals: u64,
}

impl PiParams {
    /// The paper's problem size: 50 million intervals.
    pub fn paper() -> Self {
        PiParams {
            intervals: 50_000_000,
        }
    }

    /// Default harness scale (keeps the full sweep fast on a laptop).
    pub fn harness() -> Self {
        PiParams {
            intervals: 5_000_000,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        PiParams { intervals: 50_000 }
    }
}

/// Result of a Pi run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PiResult {
    /// The estimate of π.
    pub estimate: f64,
}

/// Per-interval instruction mix of the integration kernel
/// (`x = (i + 0.5) * h; sum += 4.0 / (1.0 + x * x)`).
fn interval_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::FpAdd, 3.0)
        .with(Op::FpMul, 2.0)
        .with(Op::FpDiv, 1.0)
        .with(Op::IntAlu, 1.0)
        .with(Op::Branch, 1.0)
}

/// Sequential reference implementation.
pub fn sequential(intervals: u64) -> f64 {
    let h = 1.0 / intervals as f64;
    let mut sum = 0.0;
    for i in 0..intervals {
        let x = (i as f64 + 0.5) * h;
        sum += 4.0 / (1.0 + x * x);
    }
    sum * h
}

/// Run the Pi benchmark under `config`.
pub fn run(config: HyperionConfig, params: &PiParams) -> RunOutcome<PiResult> {
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let intervals = params.intervals;

    runtime.run(move |ctx| {
        // Shared accumulator (a Java `double` field) and its monitor.
        let accumulator: HStruct<GlobalSum> = ctx.alloc_struct(NodeId(0));
        accumulator.put(ctx, GlobalSum::SUM, 0.0);
        let sum_monitor = ctx.new_monitor(NodeId(0));

        let per_interval = ctx.estimate(&interval_mix());
        let h = 1.0 / intervals as f64;

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let monitor = sum_monitor.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let (start, end) = block_range(intervals as usize, threads, t);
                // The whole integration runs on stack-local values: no
                // DSM traffic, just compute time.
                let mut partial = 0.0f64;
                for i in start..end {
                    let x = (i as f64 + 0.5) * h;
                    partial += 4.0 / (1.0 + x * x);
                }
                worker.charge_iters(&per_interval, (end - start) as u64);

                // Global sum: the only coordination in the program.
                monitor.synchronized(worker, |worker| {
                    let global = accumulator.get(worker, GlobalSum::SUM);
                    accumulator.put(worker, GlobalSum::SUM, global + partial);
                });
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        let estimate = accumulator.get(ctx, GlobalSum::SUM) * h;
        PiResult { estimate }
    })
}

/// Adapter so the figure harness can treat Pi like every other benchmark.
impl Benchmark for PiParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::Pi
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.estimate, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn sequential_estimate_converges_to_pi() {
        let est = sequential(200_000);
        assert!((est - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential_for_both_protocols() {
        let params = PiParams::quick();
        let expected = sequential(params.intervals);
        for protocol in ProtocolKind::all() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                assert!(
                    (out.result.estimate - expected).abs() < 1e-9,
                    "{protocol:?} on {nodes} nodes: {} vs {}",
                    out.result.estimate,
                    expected
                );
            }
        }
    }

    #[test]
    fn pi_shows_near_linear_speedup() {
        let params = PiParams::quick();
        let t1 = run(config(1, ProtocolKind::JavaPf), &params)
            .report
            .execution_time;
        let t4 = run(config(4, ProtocolKind::JavaPf), &params)
            .report
            .execution_time;
        let speedup = t1.as_secs_f64() / t4.as_secs_f64();
        assert!(
            speedup > 3.0,
            "expected near-linear speedup on an embarrassingly parallel code, got {speedup:.2}"
        );
    }

    #[test]
    fn protocols_perform_essentially_identically() {
        // The paper: "The two protocols performed essentially identically on
        // both clusters for the Pi program."  A moderately sized instance is
        // needed so the constant start-up costs do not dominate the ratio.
        let params = PiParams {
            intervals: 2_000_000,
        };
        for nodes in [1, 4] {
            let ic = run(config(nodes, ProtocolKind::JavaIc), &params)
                .report
                .execution_time
                .as_secs_f64();
            let pf = run(config(nodes, ProtocolKind::JavaPf), &params)
                .report
                .execution_time
                .as_secs_f64();
            let rel = (ic - pf).abs() / pf;
            assert!(
                rel < 0.02,
                "Pi protocols diverge by {:.1}% on {nodes} nodes",
                rel * 100.0
            );
        }
    }

    #[test]
    fn pi_generates_almost_no_dsm_traffic() {
        let params = PiParams::quick();
        let out = run(config(4, ProtocolKind::JavaIc), &params);
        let total = out.report.total_stats();
        // Only the accumulator updates and the thread/join bookkeeping touch
        // shared memory.
        assert!(total.field_accesses() < 100);
        assert!(total.locality_checks < 100);
        assert_eq!(out.report.nodes, 4);
    }

    #[test]
    fn benchmark_trait_reports_figure_one() {
        let params = PiParams::quick();
        assert_eq!(params.name().figure(), 1);
        let (digest, report) = params.execute(config(2, ProtocolKind::JavaPf));
        assert!((digest - std::f64::consts::PI).abs() < 1e-3);
        assert_eq!(report.nodes, 2);
    }
}
