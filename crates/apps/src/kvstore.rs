//! KVStore: a Zipf-skewed sharded key-value/session store (Fig. 9, the
//! serving-workload extension).
//!
//! Unlike the paper's barrier-phased kernels, this app looks like production
//! traffic: every client thread hammers a set of HArray-backed shards with
//! reads drawn from a Zipf distribution (configurable skew `s`, seeded per
//! thread so the request stream is deterministic) plus a small write tail.
//! Writes are monitor-protected read-modify-write increments on the owning
//! shard's monitor — the Java idiom `synchronized (shard) { v = get(k);
//! put(k, v + delta); }` — so each write is an acquire/release pair that
//! invalidates the writer's cache and flushes its diff, which is what keeps
//! the hot-shard pages churning between nodes.
//!
//! Determinism: increments commute, so the final store state is independent
//! of thread interleaving, and every per-thread request stream is a pure
//! function of the seed.  The digest folds the final state (swept by the
//! main thread after all clients join) with the request-stream checksum, so
//! it is identical across protocols, transports and policy mixes.
//!
//! Serving metrics: every operation's modeled latency (the span of the
//! client's virtual clock across the request) is recorded via
//! [`ThreadCtx::record_serving_op`], which feeds the run report's
//! throughput (`serving_ops / execution seconds`) and exact modeled p99.

use hyperion::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{node_of_thread, Benchmark, BenchmarkName};

/// A seeded Zipf(s) sampler over ranks `0..n` (rank 0 is the hottest).
///
/// Built as a normalised harmonic CDF table sampled by binary search — the
/// offline-friendly construction, exact for any `s >= 0` (s = 0 degenerates
/// to the uniform distribution).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with skew parameter `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Parameters of the KV-store benchmark.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvStoreParams {
    /// Total number of keys in the store.
    pub keys: usize,
    /// Number of shards the key space is striped over (`shard = key % shards`,
    /// so consecutive hot keys land on different shards).
    pub shards: usize,
    /// Requests each client thread issues.
    pub ops_per_thread: usize,
    /// Zipf skew parameter `s` of the key popularity distribution.
    pub zipf_s: f64,
    /// Writes per 1000 requests (the write tail; the paper-style serving mix
    /// keeps this in the 50–100 range).
    pub write_per_mille: u32,
    /// Seed of the deterministic request streams.
    pub seed: u64,
}

impl KvStoreParams {
    /// Full-scale serving instance.
    pub fn paper() -> Self {
        KvStoreParams {
            keys: 65_536,
            shards: 32,
            ops_per_thread: 20_000,
            zipf_s: 0.99,
            write_per_mille: 64,
            seed: 0x005E_5510,
        }
    }

    /// Default harness scale.
    pub fn harness() -> Self {
        KvStoreParams {
            keys: 8_192,
            shards: 16,
            ops_per_thread: 2_500,
            zipf_s: 0.99,
            write_per_mille: 64,
            seed: 0x005E_5510,
        }
    }

    /// A tiny instance for unit tests.
    pub fn quick() -> Self {
        KvStoreParams {
            keys: 1_024,
            shards: 8,
            ops_per_thread: 250,
            zipf_s: 0.9,
            write_per_mille: 64,
            seed: 0x005E_5510,
        }
    }

    fn keys_per_shard(&self) -> usize {
        self.keys.div_ceil(self.shards)
    }
}

/// Result of a KV-store run.
#[derive(Clone, Debug, PartialEq)]
pub struct KvStoreResult {
    /// Weighted sum of the final store state plus the request-stream
    /// checksum (the cross-configuration digest).
    pub digest: f64,
    /// Requests completed (all threads).
    pub ops: u64,
    /// Writes performed (all threads).
    pub writes: u64,
}

/// Initial value of a key (a seeded but key-deterministic "session blob").
fn initial_value(key: usize) -> u64 {
    (key as u64).wrapping_mul(0x9E37) % 8_191
}

/// Increment a write applies to a key (commutative, hence
/// interleaving-independent).
fn write_delta(key: usize) -> u64 {
    (key as u64 % 7) + 1
}

/// Digest weight of a key in the final-state sweep.
fn key_weight(key: usize) -> u64 {
    (key as u64 % 63) + 1
}

/// Per-request bookkeeping mix: key hashing, shard lookup and the branchy
/// request dispatch a compiled serving loop would execute.
fn request_mix() -> OpCounts {
    OpCounts::new()
        .with(Op::IntAlu, 24.0)
        .with(Op::Load, 6.0)
        .with(Op::Store, 2.0)
        .with(Op::Branch, 8.0)
}

/// The RNG of client thread `t` (independent of every other thread's).
fn thread_rng(seed: u64, t: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Replay every client thread's request stream against a plain vector: the
/// sequential reference the parallel digest must match.
pub fn sequential(params: &KvStoreParams, threads: usize) -> KvStoreResult {
    let zipf = Zipf::new(params.keys, params.zipf_s);
    let mut store: Vec<u64> = (0..params.keys).map(initial_value).collect();
    let mut checksum = 0u64;
    let mut writes = 0u64;
    for t in 0..threads {
        let mut rng = thread_rng(params.seed, t);
        for _ in 0..params.ops_per_thread {
            let key = zipf.sample(&mut rng);
            checksum = checksum.wrapping_add(key as u64 + 1);
            if rng.gen_range(0u32..1000) < params.write_per_mille {
                store[key] += write_delta(key);
                writes += 1;
            }
        }
    }
    let weighted: u64 = store
        .iter()
        .enumerate()
        .map(|(k, v)| v * key_weight(k))
        .sum();
    KvStoreResult {
        digest: weighted as f64 + (checksum % 1_000_003) as f64,
        ops: (threads * params.ops_per_thread) as u64,
        writes,
    }
}

/// Run the KV store under `config`.
pub fn run(config: HyperionConfig, params: &KvStoreParams) -> RunOutcome<KvStoreResult> {
    assert!(params.shards > 0 && params.keys >= params.shards);
    assert!(params.write_per_mille <= 1000);
    let runtime = HyperionRuntime::new(config).expect("invalid Hyperion configuration");
    let threads = runtime.config().total_app_threads();
    let nodes = runtime.nodes();
    let params = *params;

    runtime.run(move |ctx| {
        let per_shard = params.keys_per_shard();
        // One page-aligned array + monitor per shard, homed round-robin so
        // the serving traffic spreads across the cluster; striped key
        // placement (`key % shards`) keeps the Zipf head off any one shard.
        let shards: Vec<(HArray<u64>, HMonitor)> = (0..params.shards)
            .map(|s| {
                let home = NodeId((s % nodes) as u32);
                let arr = ctx.alloc_array_page_aligned::<u64>(per_shard, home);
                (arr, ctx.new_monitor(home))
            })
            .collect();
        for (s, (arr, _)) in shards.iter().enumerate() {
            let init: Vec<u64> = (0..per_shard)
                .map(|slot| {
                    let key = slot * params.shards + s;
                    if key < params.keys {
                        initial_value(key)
                    } else {
                        0
                    }
                })
                .collect();
            arr.write_slice(ctx, 0, &init);
        }
        // Per-thread request-stream checksums and write counts, reported
        // through the DSM like any Java result array.
        let checksums = ctx.alloc_array::<u64>(threads.max(1), NodeId(0));
        let write_counts = ctx.alloc_array::<u64>(threads.max(1), NodeId(0));
        let start = JBarrier::new(ctx, threads, NodeId(0));

        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let shards: Vec<(HArray<u64>, HMonitor)> = shards.to_vec();
            let start = start.clone();
            handles.push(ctx.spawn_on(node_of_thread(t, nodes), move |worker| {
                let zipf = Zipf::new(params.keys, params.zipf_s);
                let mut rng = thread_rng(params.seed, t);
                let per_request = worker.estimate(&request_mix());
                let mut checksum = 0u64;
                let mut writes = 0u64;
                let mut read_sink = 0u64;
                start.arrive(worker);
                for _ in 0..params.ops_per_thread {
                    let began = worker.now();
                    let key = zipf.sample(&mut rng);
                    checksum = checksum.wrapping_add(key as u64 + 1);
                    let (arr, monitor) = &shards[key % params.shards];
                    let slot = key / params.shards;
                    worker.charge_iters(&per_request, 1);
                    if rng.gen_range(0u32..1000) < params.write_per_mille {
                        // Session update: a monitor-protected RMW increment
                        // on the shard, serialised against every other
                        // writer of the shard.
                        monitor.synchronized(worker, |w| {
                            let v = arr.get(w, slot);
                            arr.put(w, slot, v + write_delta(key));
                        });
                        writes += 1;
                    } else {
                        // Plain read: served from the node's cached copy
                        // until the next acquire invalidates it.
                        read_sink = read_sink.wrapping_add(arr.get(worker, slot));
                    }
                    worker.record_serving_op(worker.now() - began);
                }
                // Keep the read loop observable; the value itself is
                // schedule-dependent and stays out of the digest.
                std::hint::black_box(read_sink);
                checksums.put(worker, t, checksum);
                write_counts.put(worker, t, writes);
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // All clients joined (their release flushes reached the homes), so
        // the main-thread sweep observes the final store state.
        let mut weighted = 0u64;
        for (s, (arr, _)) in shards.iter().enumerate() {
            let values = arr.read_slice(ctx, ..);
            for (slot, v) in values.iter().enumerate() {
                let key = slot * params.shards + s;
                if key < params.keys {
                    weighted += v * key_weight(key);
                }
            }
        }
        let mut checksum = 0u64;
        let mut writes = 0u64;
        for t in 0..threads {
            checksum = checksum.wrapping_add(checksums.get(ctx, t));
            writes += write_counts.get(ctx, t);
        }
        KvStoreResult {
            digest: weighted as f64 + (checksum % 1_000_003) as f64,
            ops: (threads * params.ops_per_thread) as u64,
            writes,
        }
    })
}

impl Benchmark for KvStoreParams {
    fn name(&self) -> BenchmarkName {
        BenchmarkName::KvStore
    }

    fn execute(&self, config: HyperionConfig) -> (f64, RunReport) {
        let out = run(config, self);
        (out.result.digest, out.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
        HyperionConfig::new(myrinet_200(), nodes, protocol)
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_skewed() {
        let zipf = Zipf::new(1000, 0.99);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let draws_a: Vec<usize> = (0..500).map(|_| zipf.sample(&mut a)).collect();
        let draws_b: Vec<usize> = (0..500).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b, "same seed must replay the same stream");

        let mut c = StdRng::seed_from_u64(8);
        let draws_c: Vec<usize> = (0..500).map(|_| zipf.sample(&mut c)).collect();
        assert_ne!(draws_a, draws_c, "different seeds must diverge");

        // Skew: the hottest rank must be drawn far more often than a
        // mid-table rank, and the head must dominate.
        let hot = draws_a.iter().filter(|&&k| k == 0).count();
        let head = draws_a.iter().filter(|&&k| k < 10).count();
        assert!(hot >= 20, "rank 0 drawn only {hot} times out of 500");
        assert!(
            head * 4 >= 500,
            "head of the distribution too light: {head}"
        );
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(16, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 16];
        for _ in 0..3200 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                c > 100 && c < 300,
                "rank {k} drawn {c} times; expected ~200"
            );
        }
    }

    #[test]
    fn request_streams_are_seed_deterministic() {
        let params = KvStoreParams::quick();
        let a = sequential(&params, 3);
        let b = sequential(&params, 3);
        assert_eq!(a, b);
        let other = sequential(
            &KvStoreParams {
                seed: params.seed + 1,
                ..params
            },
            3,
        );
        assert_ne!(a.digest, other.digest);
    }

    #[test]
    fn parallel_matches_sequential_for_every_protocol() {
        let params = KvStoreParams::quick();
        for protocol in ProtocolKind::all_extended() {
            for nodes in [1, 3] {
                let out = run(config(nodes, protocol), &params);
                let expected = sequential(&params, nodes); // 1 thread per node
                assert_eq!(
                    out.result, expected,
                    "{protocol:?}/{nodes} nodes diverged from the reference"
                );
            }
        }
    }

    #[test]
    fn write_tail_is_the_configured_fraction() {
        let params = KvStoreParams::quick();
        let r = sequential(&params, 4);
        let expected = r.ops * params.write_per_mille as u64 / 1000;
        // Binomial noise: allow ±50%.
        assert!(
            r.writes * 2 > expected && r.writes < expected * 2,
            "writes {} vs expected ~{expected}",
            r.writes
        );
    }

    #[test]
    fn serving_metrics_are_reported() {
        let params = KvStoreParams::quick();
        let out = run(config(3, ProtocolKind::JavaAd), &params);
        let total = out.report.total_stats();
        assert_eq!(total.serving_ops, out.result.ops);
        assert!(total.serving_op_ps_total > 0);
        assert!(out.report.serving_p99 > VTime::ZERO);
        // A 99th percentile sits above the mean unless more than 99% of the
        // mass is concentrated at the top — impossible for a tail statistic.
        let mean_ps = total.serving_op_ps_total / total.serving_ops;
        assert!(out.report.serving_p99.as_ps() >= mean_ps);
        assert!(out.report.serving_ops_per_sec() > 0.0);
    }

    #[test]
    fn benchmark_trait_reports_figure_nine() {
        let params = KvStoreParams::quick();
        assert_eq!(params.name().figure(), 9);
        let (digest, report) = params.execute(config(2, ProtocolKind::JavaIc));
        assert_eq!(digest, sequential(&params, 2).digest);
        assert!(report.serving_ops() > 0);
    }
}
