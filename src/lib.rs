//! # hyperion-workspace
//!
//! Umbrella crate of the Hyperion-RS reproduction of *"Remote object
//! detection in cluster-based Java"* (Antoniu & Hatcher, JavaPDC/IPDPS
//! 2001).  It re-exports the public API of the member crates so the
//! examples and integration tests in this repository can `use
//! hyperion_workspace::*;`, and so downstream users can depend on a single
//! crate.
//!
//! See `README.md` for the architecture overview, the crate map and how to
//! regenerate the paper's figures and tables.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use hyperion;
pub use hyperion_apps as apps;
pub use hyperion_dsm as dsm;
pub use hyperion_model as model;
pub use hyperion_pm2 as pm2;

pub use hyperion::prelude;
pub use hyperion::{
    myrinet_200, sci_450, ClusterSpec, HyperionConfig, HyperionRuntime, NodeId, ProtocolKind,
    RunOutcome, RunReport, ThreadCtx, TransportBackend, TransportConfig, VTime,
    WireServiceSnapshot,
};
