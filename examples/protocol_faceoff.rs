//! Protocol face-off: sweep one benchmark over node counts, protocols and
//! clusters, printing a CSV plus per-run statistics.
//!
//! This is the interactive version of the figure-regeneration harness: it
//! lets you reproduce any single curve of the paper's Figures 1-5 from the
//! command line and inspect *why* one protocol wins (locality checks vs page
//! faults vs `mprotect` calls vs bytes moved).
//!
//! ```text
//! cargo run --release --example protocol_faceoff -- [pi|jacobi|barnes|tsp|asp] [scale] [protocol]
//!   scale:    quick (default) | harness | paper
//!   protocol: ic | pf | ad (default: all three)
//! ```

use hyperion::prelude::*;
use hyperion_apps::common::{parse_protocol, protocols_under_test};
use hyperion_apps::{asp, barnes, common::Benchmark, jacobi, pi, tsp};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map(String::as_str).unwrap_or("jacobi");
    let scale = args.get(2).map(String::as_str).unwrap_or("quick");
    let protocols: Vec<ProtocolKind> = match args.get(3) {
        Some(name) => match parse_protocol(name) {
            Some(p) => vec![p],
            None => {
                eprintln!("unknown protocol '{name}'; use ic|pf|ad (or java_ic|java_pf|java_ad)");
                std::process::exit(1);
            }
        },
        None => protocols_under_test().to_vec(),
    };

    let bench: Box<dyn Benchmark> = match (app, scale) {
        ("pi", "paper") => Box::new(pi::PiParams::paper()),
        ("pi", "harness") => Box::new(pi::PiParams::harness()),
        ("pi", _) => Box::new(pi::PiParams::quick()),
        ("jacobi", "paper") => Box::new(jacobi::JacobiParams::paper()),
        ("jacobi", "harness") => Box::new(jacobi::JacobiParams::harness()),
        ("jacobi", _) => Box::new(jacobi::JacobiParams::quick()),
        ("barnes", "paper") => Box::new(barnes::BarnesParams::paper()),
        ("barnes", "harness") => Box::new(barnes::BarnesParams::harness()),
        ("barnes", _) => Box::new(barnes::BarnesParams::quick()),
        ("tsp", "paper") => Box::new(tsp::TspParams::paper()),
        ("tsp", "harness") => Box::new(tsp::TspParams::harness()),
        ("tsp", _) => Box::new(tsp::TspParams::quick()),
        ("asp", "paper") => Box::new(asp::AspParams::paper()),
        ("asp", "harness") => Box::new(asp::AspParams::harness()),
        ("asp", _) => Box::new(asp::AspParams::quick()),
        _ => {
            eprintln!("unknown benchmark '{app}'; use pi|jacobi|barnes|tsp|asp");
            std::process::exit(1);
        }
    };

    println!(
        "# {} ({scale} scale) — execution times are virtual seconds",
        bench.name()
    );
    println!(
        "cluster,protocol,nodes,exec_s,checks,faults,mprotect,page_loads,diff_msgs,bytes,remote_monitor"
    );
    for cluster in [myrinet_200(), sci_450()] {
        let node_counts: Vec<usize> = [1usize, 2, 4, 6, 8, 12]
            .into_iter()
            .filter(|&n| n <= cluster.max_nodes)
            .collect();
        for &protocol in &protocols {
            for &nodes in &node_counts {
                let config = HyperionConfig::builder()
                    .cluster(cluster.clone())
                    .nodes(nodes)
                    .protocol(protocol)
                    .build()
                    .expect("valid configuration");
                let (_digest, report) = bench.execute(config);
                let t = report.total_stats();
                println!(
                    "{},{},{},{:.4},{},{},{},{},{},{},{}",
                    report.cluster_label,
                    protocol,
                    nodes,
                    report.seconds(),
                    t.locality_checks,
                    t.page_faults,
                    t.mprotect_calls,
                    t.page_loads,
                    t.diff_messages,
                    t.bytes_moved(),
                    t.remote_monitor_acquires,
                );
            }
        }
    }
}
