//! Quickstart: the smallest useful Hyperion-RS program.
//!
//! A four-node cluster runs a threaded "Java" program twice — once under
//! each access-detection protocol — and prints the virtual execution time
//! plus the event counts that explain the difference, exactly the
//! comparison the paper makes in §4.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyperion::prelude::*;

/// A small shared-memory workload: every worker increments a shared
/// histogram under a monitor and then smooths a shared vector it owns a
/// block of, coordinating with a barrier — a miniature of the paper's
/// benchmark structure.
fn workload(protocol: ProtocolKind) -> RunOutcome<f64> {
    let nodes = 4;
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(nodes)
        .protocol(protocol)
        .build()
        .expect("valid configuration");
    let runtime = HyperionRuntime::new(config).expect("valid configuration");

    runtime.run(move |ctx| {
        let len = 4096usize;
        // A shared vector distributed by blocks over the nodes, plus the
        // output buffer of the smoothing pass (double-buffered so the
        // boundary read below is deterministic — smoothing in place would
        // race with the left neighbour's own smoothing).
        let data: HArray<f64> = ctx.alloc_array(len, NodeId(0));
        let smoothed: HArray<f64> = ctx.alloc_array(len, NodeId(0));
        let histogram = ctx.alloc_array::<u64>(16, NodeId(0));
        let hist_monitor = ctx.new_monitor(NodeId(0));
        let barrier = JBarrier::new(ctx, nodes, NodeId(0));

        let mut handles = Vec::new();
        for t in 0..nodes {
            let hist_monitor = hist_monitor.clone();
            let barrier = barrier.clone();
            handles.push(ctx.spawn_on(NodeId(t as u32), move |worker| {
                let chunk = len / 4;
                let start = t * chunk;
                // Fill my block.
                for i in start..start + chunk {
                    data.put(worker, i, (i % 97) as f64);
                }
                // Tally my block into the shared histogram (synchronized).
                hist_monitor.synchronized(worker, |w| {
                    for i in start..start + chunk {
                        let v = data.get(w, i) as usize % 16;
                        let old: u64 = histogram.get(w, v);
                        histogram.put(w, v, old + 1);
                    }
                });
                barrier.arrive(worker);
                // Smooth my block into the output buffer, reading one
                // neighbour value across the block boundary (remote for
                // t > 0).
                for i in start.max(1)..start + chunk {
                    let left = data.get(worker, i - 1);
                    let here = data.get(worker, i);
                    smoothed.put(worker, i, 0.5 * (left + here));
                    worker.charge_mix(&OpCounts::new().with(Op::FpAdd, 2.0).with(Op::FpMul, 1.0));
                }
                barrier.arrive(worker);
            }));
        }
        for h in handles {
            ctx.join(h);
        }

        // Checksum so both protocols can be compared for correctness too.
        // Main reads the final state through pinned views: detection is
        // paid once per page, and the element reads are free.
        assert_eq!(ctx.locality(smoothed.base()), Locality::Local);
        let smoothed_view = smoothed.view(ctx, ..);
        let hist_view = histogram.view(ctx, ..);
        let mut sum: f64 = smoothed_view.iter().sum();
        sum += hist_view.iter().map(|v| v as f64).sum::<f64>();
        sum
    })
}

fn main() {
    println!("Hyperion-RS quickstart: 4 nodes of the 200MHz/Myrinet cluster\n");
    let mut results = Vec::new();
    for protocol in ProtocolKind::all() {
        let out = workload(protocol);
        println!("{}", out.report.summary());
        println!();
        results.push((protocol, out.result, out.report.seconds()));
    }
    let (p0, sum0, t0) = &results[0];
    let (p1, sum1, t1) = &results[1];
    assert_eq!(sum0, sum1, "both protocols must compute the same answer");
    println!("checksum (identical under both protocols): {sum0:.3}");
    if t1 < t0 {
        println!(
            "{} is {:.1}% faster than {} on this workload",
            p1.name(),
            (t0 - t1) / t0 * 100.0,
            p0.name()
        );
    } else {
        println!(
            "{} is {:.1}% faster than {} on this workload",
            p0.name(),
            (t1 - t0) / t1 * 100.0,
            p1.name()
        );
    }
}
