//! Jacobi heat diffusion on a cluster: the paper's Fig. 2 workload as a
//! standalone application.
//!
//! Runs the Jacobi benchmark on a chosen cluster and node count, under both
//! protocols, verifies the result against the sequential reference and
//! prints a small temperature profile of the final plate together with the
//! protocol comparison.
//!
//! ```text
//! cargo run --release --example jacobi_heat -- [nodes] [size] [steps]
//! ```

use hyperion::prelude::*;
use hyperion_apps::jacobi::{self, JacobiParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let size: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(96);
    let steps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);
    let params = JacobiParams { size, steps };

    println!("Jacobi: {size}x{size} plate, {steps} timesteps, {nodes} nodes (200MHz/Myrinet)\n");

    let (seq_sum, seq_center) = jacobi::sequential(&params);

    let mut times = Vec::new();
    for protocol in ProtocolKind::all() {
        let config = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(nodes)
            .protocol(protocol)
            .build()
            .expect("valid configuration");
        let out = jacobi::run(config, &params);
        assert!(
            (out.result.interior_sum - seq_sum).abs() < 1e-6,
            "distributed result diverged from the sequential reference"
        );
        println!("{}", out.report.summary());
        times.push((protocol, out.report.seconds()));
        if protocol == ProtocolKind::JavaPf {
            println!(
                "  centre temperature: {:.4} (sequential reference: {:.4})",
                out.result.center, seq_center
            );
        }
        println!();
    }

    let ic = times
        .iter()
        .find(|(p, _)| *p == ProtocolKind::JavaIc)
        .unwrap()
        .1;
    let pf = times
        .iter()
        .find(|(p, _)| *p == ProtocolKind::JavaPf)
        .unwrap()
        .1;
    println!(
        "java_pf improvement over java_ic: {:.1}% (paper reports ~38% for Jacobi on this cluster)",
        (ic - pf) / ic * 100.0
    );
}
