//! Branch-and-bound TSP with a central work queue: the paper's Fig. 4
//! workload as a standalone application.
//!
//! Demonstrates the "central data structures on one node, fetched through
//! the DSM by everyone else" pattern the paper discusses, and how the two
//! access-detection protocols cope with it.
//!
//! ```text
//! cargo run --release --example tsp_search -- [nodes] [cities]
//! ```

use hyperion::prelude::*;
use hyperion_apps::tsp::{self, TspParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cities: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let params = TspParams {
        cities,
        seed: 2001,
        queue_depth: 2,
    };

    println!("TSP: {cities} cities, {nodes} nodes (200MHz/Myrinet), central queue on node 0\n");

    let optimal = tsp::sequential(&params);
    println!("sequential branch-and-bound optimum: {optimal}\n");

    let mut times = Vec::new();
    for protocol in ProtocolKind::all() {
        let config = HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(nodes)
            .protocol(protocol)
            .build()
            .expect("valid configuration");
        let out = tsp::run(config, &params);
        assert_eq!(
            out.result.best_tour, optimal,
            "distributed search must find the same optimal tour"
        );
        println!(
            "{} -> optimal tour {} after expanding {} queue entries",
            out.report.summary(),
            out.result.best_tour,
            out.result.tours_expanded
        );
        println!();
        times.push((protocol, out.report.seconds()));
    }

    let ic = times
        .iter()
        .find(|(p, _)| *p == ProtocolKind::JavaIc)
        .unwrap()
        .1;
    let pf = times
        .iter()
        .find(|(p, _)| *p == ProtocolKind::JavaPf)
        .unwrap()
        .1;
    println!(
        "java_pf improvement over java_ic: {:.1}%",
        (ic - pf) / ic * 100.0
    );
}
