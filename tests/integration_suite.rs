//! Cross-crate integration tests: every benchmark program, both protocols,
//! both modelled clusters, verified against its sequential reference, plus
//! the cross-cutting invariants that tie the statistics of the layers
//! together.

use hyperion_workspace::apps::{asp, barnes, common::Benchmark, jacobi, pi, tsp};
use hyperion_workspace::prelude::*;
use hyperion_workspace::{HyperionConfig, ProtocolKind};

fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(pi::PiParams::quick()),
        Box::new(jacobi::JacobiParams::quick()),
        Box::new(barnes::BarnesParams::quick()),
        Box::new(tsp::TspParams::quick()),
        Box::new(asp::AspParams::quick()),
    ]
}

fn config(nodes: usize, protocol: ProtocolKind) -> HyperionConfig {
    HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(nodes)
        .protocol(protocol)
        .build()
        .expect("valid test configuration")
}

#[test]
fn every_benchmark_computes_the_same_answer_under_every_configuration() {
    for bench in all_benchmarks() {
        let mut digests = Vec::new();
        for cluster in [myrinet_200(), sci_450()] {
            for protocol in ProtocolKind::all() {
                for nodes in [1usize, 3] {
                    let config = HyperionConfig::builder()
                        .cluster(cluster.clone())
                        .nodes(nodes)
                        .protocol(protocol)
                        .build()
                        .expect("valid test configuration");
                    let (digest, report) = bench.execute(config);
                    assert!(
                        report.execution_time > VTime::ZERO,
                        "{}: zero execution time",
                        bench.name()
                    );
                    digests.push(digest);
                }
            }
        }
        let first = digests[0];
        for (i, d) in digests.iter().enumerate() {
            let rel = if first == 0.0 {
                (d - first).abs()
            } else {
                ((d - first) / first).abs()
            };
            assert!(
                rel < 1e-9,
                "{}: digest {i} diverged: {d} vs {first}",
                bench.name()
            );
        }
    }
}

#[test]
fn protocol_specific_counters_are_mutually_exclusive() {
    for bench in all_benchmarks() {
        let (_d, report_ic) = bench.execute(config(3, ProtocolKind::JavaIc));
        let ic = report_ic.total_stats();
        assert_eq!(
            ic.page_faults,
            0,
            "{}: java_ic must never take page faults",
            bench.name()
        );
        assert_eq!(
            ic.mprotect_calls,
            0,
            "{}: java_ic must never call mprotect",
            bench.name()
        );
        // Element-wise accesses pay one in-line check each; bulk slice
        // transfers pay one per touched page, so with any bulk traffic the
        // check count drops strictly below the access count.
        assert!(
            ic.locality_checks > 0,
            "{}: java_ic must perform in-line checks",
            bench.name()
        );
        if ic.bulk_reads + ic.bulk_writes == 0 {
            assert_eq!(
                ic.locality_checks,
                ic.field_accesses(),
                "{}: java_ic checks every single element-wise access",
                bench.name()
            );
        } else {
            assert!(
                ic.locality_checks < ic.field_accesses(),
                "{}: bulk transfers must amortise in-line checks",
                bench.name()
            );
        }

        let (_d, report_pf) = bench.execute(config(3, ProtocolKind::JavaPf));
        let pf = report_pf.total_stats();
        assert_eq!(
            pf.locality_checks,
            0,
            "{}: java_pf must never perform in-line checks",
            bench.name()
        );
        assert!(
            pf.mprotect_calls >= pf.page_faults,
            "{}: every fault re-opens its page with mprotect",
            bench.name()
        );
    }
}

#[test]
fn cross_layer_statistics_are_consistent() {
    for bench in all_benchmarks() {
        let config = HyperionConfig::builder()
            .cluster(sci_450())
            .nodes(4)
            .protocol(ProtocolKind::JavaPf)
            .build()
            .expect("valid test configuration");
        let (_d, report) = bench.execute(config);
        let t = report.total_stats();
        // Monitors are always exited as often as they are entered.
        assert_eq!(t.monitor_enters, t.monitor_exits, "{}", bench.name());
        // Every page load is an RPC, and diffs are RPCs too.
        assert!(
            t.rpc_requests >= t.page_loads + t.diff_messages,
            "{}",
            bench.name()
        );
        assert_eq!(t.rpc_requests, t.rpc_served, "{}", bench.name());
        // What one node sends another receives.
        assert_eq!(t.bytes_sent, t.bytes_received, "{}", bench.name());
        // Single-JVM image: one thread per node plus main.
        assert_eq!(report.threads, 4 + 1, "{}", bench.name());
        // Flushed slots can only come from writes.
        assert!(t.diff_slots_flushed <= t.field_writes, "{}", bench.name());
    }
}

#[test]
fn single_node_runs_never_touch_the_network() {
    for bench in all_benchmarks() {
        let config = config(1, ProtocolKind::JavaPf);
        let (_d, report) = bench.execute(config);
        let t = report.total_stats();
        assert_eq!(t.bytes_sent, 0, "{}", bench.name());
        assert_eq!(t.page_loads, 0, "{}", bench.name());
        assert_eq!(t.page_faults, 0, "{}", bench.name());
        assert_eq!(t.remote_monitor_acquires, 0, "{}", bench.name());
    }
}

#[test]
fn faster_cluster_is_faster_in_absolute_terms() {
    // The 450 MHz SCI nodes finish every single-node run earlier than the
    // 200 MHz Myrinet nodes (pure CPU scaling; no network involved).
    for bench in all_benchmarks() {
        let (_d, myri) = bench.execute(config(1, ProtocolKind::JavaPf));
        let sci_config = HyperionConfig::builder()
            .cluster(sci_450())
            .nodes(1)
            .protocol(ProtocolKind::JavaPf)
            .build()
            .expect("valid test configuration");
        let (_d, sci) = bench.execute(sci_config);
        assert!(
            sci.execution_time < myri.execution_time,
            "{}: SCI {} !< Myrinet {}",
            bench.name(),
            sci.execution_time,
            myri.execution_time
        );
    }
}

#[test]
fn multiple_threads_per_node_still_compute_the_right_answer() {
    let params = jacobi::JacobiParams::quick();
    let (expected, _) = jacobi::sequential(&params);
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(2)
        .protocol(ProtocolKind::JavaPf)
        .threads_per_node(2)
        .build()
        .expect("valid test configuration");
    let out = jacobi::run(config, &params);
    assert!((out.result.interior_sum - expected).abs() < 1e-6);
    // 2 nodes x 2 threads + main.
    assert_eq!(out.report.threads, 5);
}

#[test]
fn pacing_can_be_disabled_without_affecting_correctness() {
    let params = tsp::TspParams::quick();
    let expected = tsp::sequential(&params);
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(3)
        .protocol(ProtocolKind::JavaIc)
        .pacing_window(None)
        .build()
        .expect("valid test configuration");
    let out = tsp::run(config, &params);
    assert_eq!(out.result.best_tour, expected);
}

#[test]
fn run_report_summary_mentions_the_protocol_and_cluster() {
    let sci_config = HyperionConfig::builder()
        .cluster(sci_450())
        .nodes(2)
        .protocol(ProtocolKind::JavaIc)
        .build()
        .expect("valid test configuration");
    let (_d, report) = pi::PiParams::quick().execute(sci_config);
    let summary = report.summary();
    assert!(summary.contains("java_ic"));
    assert!(summary.contains("450MHz/SCI"));
    assert!(summary.contains("checks="));
}
