//! Property-based tests (proptest) for the core data structures and the DSM
//! consistency protocols.
//!
//! The central property is a model check of the DSM layer: an arbitrary
//! sequence of `put` / `get` / `updateMainMemory` / `invalidateCache`
//! operations, executed against the real protocol engine, must observe
//! exactly the values predicted by a tiny executable specification of
//! home-based Java consistency (per-node caches over a single main memory).
//! Both protocols must satisfy it — they are two *detection* mechanisms for
//! the same consistency model.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use hyperion_workspace::dsm::{DsmStore, DsmSystem, ProtocolKind};
use hyperion_workspace::model::{myrinet_200, ThreadClock, VTime};
use hyperion_workspace::pm2::{Cluster, GlobalAddr, IsoAllocator, NodeId};

/// One step of the random DSM program.
#[derive(Clone, Debug)]
enum DsmOp {
    Put { node: u8, slot: u8, value: u64 },
    Get { node: u8, slot: u8 },
    Flush { node: u8 },
    Invalidate { node: u8 },
}

fn op_strategy(nodes: u8, slots: u8) -> impl Strategy<Value = DsmOp> {
    prop_oneof![
        (0..nodes, 0..slots, any::<u64>()).prop_map(|(node, slot, value)| DsmOp::Put {
            node,
            slot,
            value
        }),
        (0..nodes, 0..slots).prop_map(|(node, slot)| DsmOp::Get { node, slot }),
        (0..nodes).prop_map(|node| DsmOp::Flush { node }),
        (0..nodes).prop_map(|node| DsmOp::Invalidate { node }),
    ]
}

/// Executable specification of home-based Java consistency for a single
/// driving thread: a main memory plus one (cache, dirty-set) pair per node.
struct SpecMemory {
    num_slots: usize,
    homes: Vec<usize>,
    main: Vec<u64>,
    cache: Vec<HashMap<usize, u64>>,
    dirty: Vec<HashMap<usize, u64>>,
}

impl SpecMemory {
    fn new(nodes: usize, num_slots: usize, homes: Vec<usize>) -> Self {
        SpecMemory {
            num_slots,
            homes,
            main: vec![0; num_slots],
            cache: (0..nodes).map(|_| HashMap::new()).collect(),
            dirty: (0..nodes).map(|_| HashMap::new()).collect(),
        }
    }

    fn get(&mut self, node: usize, slot: usize) -> u64 {
        if self.homes[slot] == node {
            return self.main[slot];
        }
        if let Some(&v) = self.cache[node].get(&slot) {
            return v;
        }
        // Miss: the whole "page" (here: every slot with the same home) is
        // brought in.
        let home = self.homes[slot];
        for s in 0..self.num_slots {
            if self.homes[s] == home {
                self.cache[node].insert(s, self.main[s]);
            }
        }
        self.cache[node][&slot]
    }

    fn put(&mut self, node: usize, slot: usize, value: u64) {
        if self.homes[slot] == node {
            self.main[slot] = value;
            return;
        }
        // Write allocate, exactly like the real engine.
        self.get(node, slot);
        self.cache[node].insert(slot, value);
        self.dirty[node].insert(slot, value);
    }

    fn flush(&mut self, node: usize) {
        for (slot, value) in self.dirty[node].drain() {
            self.main[slot] = value;
        }
    }

    fn invalidate(&mut self, node: usize) {
        // The engine flushes pending writes before dropping copies so no
        // update can be lost.
        self.flush(node);
        self.cache[node].clear();
    }
}

/// Build a real DSM system with `nodes` nodes and two shared "objects":
/// `slots_per_home` slots homed on each node, all on distinct pages.
fn build_dsm(
    protocol: ProtocolKind,
    nodes: usize,
    slots_per_home: usize,
) -> (Arc<DsmSystem>, Vec<GlobalAddr>, Vec<usize>) {
    let cluster = Cluster::new(myrinet_200().machine, nodes);
    let alloc = Arc::new(IsoAllocator::new(nodes));
    let store = DsmStore::new(Arc::clone(&alloc), nodes);
    let dsm = DsmSystem::new(cluster, store, protocol);
    let mut addrs = Vec::new();
    let mut homes = Vec::new();
    for home in 0..nodes {
        let base = alloc.alloc_page_aligned(slots_per_home, NodeId(home as u32));
        for s in 0..slots_per_home {
            addrs.push(base.offset(s as u64));
            homes.push(home);
        }
    }
    (dsm, addrs, homes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The real protocol engines agree with the executable specification on
    /// every read, for arbitrary operation sequences, under both protocols.
    #[test]
    fn dsm_matches_the_consistency_specification(
        ops in proptest::collection::vec(op_strategy(3, 12), 1..120)
    ) {
        for protocol in [ProtocolKind::JavaIc, ProtocolKind::JavaPf] {
            let nodes = 3usize;
            let slots_per_home = 4usize;
            let (dsm, addrs, homes) = build_dsm(protocol, nodes, slots_per_home);
            let mut spec = SpecMemory::new(nodes, addrs.len(), homes);
            let mut clocks: Vec<ThreadClock> = (0..nodes).map(|_| ThreadClock::new()).collect();

            for op in &ops {
                match *op {
                    DsmOp::Put { node, slot, value } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        dsm.put(NodeId(node as u32), &mut clocks[node], addrs[slot], value);
                        spec.put(node, slot, value);
                    }
                    DsmOp::Get { node, slot } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        let real = dsm.get(NodeId(node as u32), &mut clocks[node], addrs[slot]);
                        let expected = spec.get(node, slot);
                        prop_assert_eq!(real, expected, "{:?} read mismatch at slot {}", protocol, slot);
                    }
                    DsmOp::Flush { node } => {
                        let node = node as usize;
                        dsm.update_main_memory(NodeId(node as u32), &mut clocks[node]);
                        spec.flush(node);
                    }
                    DsmOp::Invalidate { node } => {
                        let node = node as usize;
                        dsm.invalidate_cache(NodeId(node as u32), &mut clocks[node]);
                        spec.invalidate(node);
                    }
                }
            }

            // Quiesce: flush everything and check main memory agrees slot by
            // slot (read from each slot's home node).
            for node in 0..nodes {
                dsm.update_main_memory(NodeId(node as u32), &mut clocks[node]);
                spec.flush(node);
            }
            for (slot, addr) in addrs.iter().enumerate() {
                let home = spec.homes[slot];
                let real = dsm.get(NodeId(home as u32), &mut clocks[home], *addr);
                prop_assert_eq!(real, spec.main[slot]);
            }
        }
    }

    /// Virtual time never decreases and only `java_ic` performs checks.
    #[test]
    fn protocol_costs_are_monotone_and_protocol_specific(
        ops in proptest::collection::vec(op_strategy(2, 8), 1..60)
    ) {
        for protocol in [ProtocolKind::JavaIc, ProtocolKind::JavaPf] {
            let (dsm, addrs, _homes) = build_dsm(protocol, 2, 4);
            let mut clock = ThreadClock::new();
            let mut last = VTime::ZERO;
            for op in &ops {
                match *op {
                    DsmOp::Put { slot, value, .. } => {
                        dsm.put(NodeId(0), &mut clock, addrs[slot as usize % addrs.len()], value)
                    }
                    DsmOp::Get { slot, .. } => {
                        let _ = dsm.get(NodeId(0), &mut clock, addrs[slot as usize % addrs.len()]);
                    }
                    DsmOp::Flush { .. } => dsm.update_main_memory(NodeId(0), &mut clock),
                    DsmOp::Invalidate { .. } => dsm.invalidate_cache(NodeId(0), &mut clock),
                }
                prop_assert!(clock.now() >= last);
                last = clock.now();
            }
            let stats = dsm.cluster().total_stats();
            match protocol {
                ProtocolKind::JavaIc => {
                    prop_assert_eq!(stats.page_faults, 0);
                    prop_assert_eq!(stats.mprotect_calls, 0);
                    prop_assert_eq!(stats.locality_checks, stats.field_reads + stats.field_writes);
                }
                ProtocolKind::JavaPf => {
                    prop_assert_eq!(stats.locality_checks, 0);
                    prop_assert!(stats.mprotect_calls >= stats.page_faults);
                }
            }
        }
    }

    /// The iso-address allocator never hands out overlapping ranges and
    /// always records a home for every allocated page.
    #[test]
    fn allocator_ranges_never_overlap(
        sizes in proptest::collection::vec((1usize..200, 0u32..4), 1..40)
    ) {
        let alloc = IsoAllocator::new(4);
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for (slots, home) in sizes {
            let addr = alloc.alloc(slots, NodeId(home));
            let start = addr.0;
            let end = start + slots as u64;
            for &(s, e) in &seen {
                prop_assert!(end <= s || start >= e, "ranges [{start},{end}) and [{s},{e}) overlap");
            }
            // Every page of the range is homed on the requested node.
            for page in addr.page().0..=addr.offset(slots as u64 - 1).page().0 {
                prop_assert_eq!(alloc.home_of(hyperion_workspace::pm2::PageId(page)), NodeId(home));
            }
            seen.push((start, end));
        }
    }

    /// `block_range` tiles the index space for arbitrary sizes.
    #[test]
    fn block_range_tiles_any_size(total in 0usize..10_000, parts in 1usize..64) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for idx in 0..parts {
            let (s, e) = hyperion_workspace::apps::block_range(total, parts, idx);
            prop_assert_eq!(s, prev_end);
            prop_assert!(e >= s);
            prop_assert!(e - s <= total / parts + 1);
            covered += e - s;
            prev_end = e;
        }
        prop_assert_eq!(covered, total);
    }

    /// VTime arithmetic: saturating, commutative max, order-compatible.
    #[test]
    fn vtime_algebra(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = VTime::from_ps(a);
        let tb = VTime::from_ps(b);
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!(ta.max(tb), tb.max(ta));
        prop_assert!((ta + tb) >= ta);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.times(3).as_ps(), a * 3);
    }
}
