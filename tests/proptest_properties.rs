//! Randomised property tests for the core data structures and the DSM
//! consistency protocols.
//!
//! Formerly written against `proptest`; the build environment is offline, so
//! the file now drives the same properties from a small self-contained
//! harness: every property runs over a fixed set of seeds through the
//! deterministic workspace RNG, which keeps failures reproducible (the seed
//! is part of every assertion message).
//!
//! The central property is a model check of the DSM layer: an arbitrary
//! sequence of `put` / `get` / `updateMainMemory` / `invalidateCache`
//! operations, executed against the real protocol engine, must observe
//! exactly the values predicted by a tiny executable specification of
//! home-based Java consistency (per-node caches over a single main memory).
//! Both protocols must satisfy it — they are two *detection* mechanisms for
//! the same consistency model.  A second model check drives the bulk
//! `read_slice` / `write_slice` path against the element-wise loop and
//! demands identical values *and* compatible statistics.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperion_workspace::dsm::{DsmStore, DsmSystem, ProtocolKind, TransportConfig};
use hyperion_workspace::model::{myrinet_200, StatsSnapshot, ThreadClock, VTime};
use hyperion_workspace::pm2::{Cluster, GlobalAddr, IsoAllocator, NodeId, PageId};

/// Run `body` once per seed, labelling failures with the seed.
fn property(cases: u64, body: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        body(seed, &mut rng);
    }
}

/// One step of the random DSM program.
#[derive(Clone, Debug)]
enum DsmOp {
    Put { node: u8, slot: u8, value: u64 },
    Get { node: u8, slot: u8 },
    Flush { node: u8 },
    Invalidate { node: u8 },
}

fn random_op(rng: &mut StdRng, nodes: u8, slots: u8) -> DsmOp {
    match rng.gen_range(0u32..4) {
        0 => DsmOp::Put {
            node: rng.gen_range(0..nodes),
            slot: rng.gen_range(0..slots),
            value: rng.gen_range(0u64..u64::MAX / 2),
        },
        1 => DsmOp::Get {
            node: rng.gen_range(0..nodes),
            slot: rng.gen_range(0..slots),
        },
        2 => DsmOp::Flush {
            node: rng.gen_range(0..nodes),
        },
        _ => DsmOp::Invalidate {
            node: rng.gen_range(0..nodes),
        },
    }
}

fn random_ops(rng: &mut StdRng, nodes: u8, slots: u8, max_len: usize) -> Vec<DsmOp> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| random_op(rng, nodes, slots)).collect()
}

/// Executable specification of home-based Java consistency for a single
/// driving thread: a main memory plus one (cache, dirty-set) pair per node.
struct SpecMemory {
    num_slots: usize,
    homes: Vec<usize>,
    main: Vec<u64>,
    cache: Vec<HashMap<usize, u64>>,
    dirty: Vec<HashMap<usize, u64>>,
}

impl SpecMemory {
    fn new(nodes: usize, num_slots: usize, homes: Vec<usize>) -> Self {
        SpecMemory {
            num_slots,
            homes,
            main: vec![0; num_slots],
            cache: (0..nodes).map(|_| HashMap::new()).collect(),
            dirty: (0..nodes).map(|_| HashMap::new()).collect(),
        }
    }

    fn get(&mut self, node: usize, slot: usize) -> u64 {
        if self.homes[slot] == node {
            return self.main[slot];
        }
        if let Some(&v) = self.cache[node].get(&slot) {
            return v;
        }
        // Miss: the whole "page" (here: every slot with the same home) is
        // brought in.
        let home = self.homes[slot];
        for s in 0..self.num_slots {
            if self.homes[s] == home {
                self.cache[node].insert(s, self.main[s]);
            }
        }
        self.cache[node][&slot]
    }

    fn put(&mut self, node: usize, slot: usize, value: u64) {
        if self.homes[slot] == node {
            self.main[slot] = value;
            return;
        }
        // Write allocate, exactly like the real engine.
        self.get(node, slot);
        self.cache[node].insert(slot, value);
        self.dirty[node].insert(slot, value);
    }

    fn flush(&mut self, node: usize) {
        for (slot, value) in self.dirty[node].drain() {
            self.main[slot] = value;
        }
    }

    fn invalidate(&mut self, node: usize) {
        // The engine flushes pending writes before dropping copies so no
        // update can be lost.
        self.flush(node);
        self.cache[node].clear();
    }
}

/// Build a real DSM system with `nodes` nodes and two shared "objects":
/// `slots_per_home` slots homed on each node, all on distinct pages.
fn build_dsm(
    protocol: ProtocolKind,
    nodes: usize,
    slots_per_home: usize,
) -> (Arc<DsmSystem>, Vec<GlobalAddr>, Vec<usize>) {
    let cluster = Cluster::new(myrinet_200().machine, nodes);
    let alloc = Arc::new(IsoAllocator::new(nodes));
    let store = DsmStore::new(Arc::clone(&alloc), nodes);
    let dsm = DsmSystem::new(cluster, store, protocol);
    let mut addrs = Vec::new();
    let mut homes = Vec::new();
    for home in 0..nodes {
        let base = alloc.alloc_page_aligned(slots_per_home, NodeId(home as u32));
        for s in 0..slots_per_home {
            addrs.push(base.offset(s as u64));
            homes.push(home);
        }
    }
    (dsm, addrs, homes)
}

/// The real protocol engines agree with the executable specification on
/// every read, for arbitrary operation sequences, under both protocols.
#[test]
fn dsm_matches_the_consistency_specification() {
    property(48, |seed, rng| {
        let ops = random_ops(rng, 3, 12, 120);
        for protocol in [ProtocolKind::JavaIc, ProtocolKind::JavaPf] {
            let nodes = 3usize;
            let slots_per_home = 4usize;
            let (dsm, addrs, homes) = build_dsm(protocol, nodes, slots_per_home);
            let mut spec = SpecMemory::new(nodes, addrs.len(), homes);
            let mut clocks: Vec<ThreadClock> = (0..nodes).map(|_| ThreadClock::new()).collect();

            for op in &ops {
                match *op {
                    DsmOp::Put { node, slot, value } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        dsm.put(NodeId(node as u32), &mut clocks[node], addrs[slot], value);
                        spec.put(node, slot, value);
                    }
                    DsmOp::Get { node, slot } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        let real = dsm.get(NodeId(node as u32), &mut clocks[node], addrs[slot]);
                        let expected = spec.get(node, slot);
                        assert_eq!(
                            real, expected,
                            "seed {seed}: {protocol:?} read mismatch at slot {slot}"
                        );
                    }
                    DsmOp::Flush { node } => {
                        let node = node as usize;
                        dsm.update_main_memory(NodeId(node as u32), &mut clocks[node]);
                        spec.flush(node);
                    }
                    DsmOp::Invalidate { node } => {
                        let node = node as usize;
                        dsm.invalidate_cache(NodeId(node as u32), &mut clocks[node]);
                        spec.invalidate(node);
                    }
                }
            }

            // Quiesce: flush everything and check main memory agrees slot by
            // slot (read from each slot's home node).
            for (node, clock) in clocks.iter_mut().enumerate() {
                dsm.update_main_memory(NodeId(node as u32), clock);
                spec.flush(node);
            }
            for (slot, addr) in addrs.iter().enumerate() {
                let home = spec.homes[slot];
                let real = dsm.get(NodeId(home as u32), &mut clocks[home], *addr);
                assert_eq!(
                    real, spec.main[slot],
                    "seed {seed}: final state, slot {slot}"
                );
            }
        }
    });
}

/// The model check of [`dsm_matches_the_consistency_specification`], run
/// under the prefetch-directory transport: hint-driven prefetches install
/// pages ahead of the demand misses and deferred flushing re-times the
/// release RPCs, but every read must still observe exactly the values the
/// consistency specification predicts, under all three protocols.
#[test]
fn dsm_matches_the_consistency_specification_under_directory_transport() {
    property(32, |seed, rng| {
        let ops = random_ops(rng, 3, 12, 120);
        for protocol in [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ] {
            let nodes = 3usize;
            let slots_per_home = 4usize;
            let cluster = Cluster::new(myrinet_200().machine, nodes);
            let alloc = Arc::new(IsoAllocator::new(nodes));
            let store = DsmStore::new(Arc::clone(&alloc), nodes);
            let dsm = DsmSystem::with_config(
                cluster,
                store,
                protocol,
                &hyperion_workspace::dsm::AdaptiveParams::default(),
                &TransportConfig::directory(),
            );
            let mut addrs = Vec::new();
            let mut homes = Vec::new();
            for home in 0..nodes {
                let base = alloc.alloc_page_aligned(slots_per_home, NodeId(home as u32));
                for s in 0..slots_per_home {
                    addrs.push(base.offset(s as u64));
                    homes.push(home);
                }
            }
            let mut spec = SpecMemory::new(nodes, addrs.len(), homes);
            let mut clocks: Vec<ThreadClock> = (0..nodes).map(|_| ThreadClock::new()).collect();

            for op in &ops {
                match *op {
                    DsmOp::Put { node, slot, value } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        dsm.put(NodeId(node as u32), &mut clocks[node], addrs[slot], value);
                        spec.put(node, slot, value);
                    }
                    DsmOp::Get { node, slot } => {
                        let node = node as usize;
                        let slot = slot as usize % addrs.len();
                        let real = dsm.get(NodeId(node as u32), &mut clocks[node], addrs[slot]);
                        let expected = spec.get(node, slot);
                        assert_eq!(
                            real, expected,
                            "seed {seed}: {protocol:?} directory-transport read mismatch at \
                             slot {slot}"
                        );
                    }
                    DsmOp::Flush { node } => {
                        let node = node as usize;
                        // Exercise the deferred path: values must land at the
                        // homes immediately (only the latency accounting is
                        // deferred to the monitor hand-off).
                        let _ =
                            dsm.update_main_memory_deferred(NodeId(node as u32), &mut clocks[node]);
                        spec.flush(node);
                    }
                    DsmOp::Invalidate { node } => {
                        let node = node as usize;
                        dsm.invalidate_cache(NodeId(node as u32), &mut clocks[node]);
                        spec.invalidate(node);
                    }
                }
            }

            for (node, clock) in clocks.iter_mut().enumerate() {
                dsm.update_main_memory(NodeId(node as u32), clock);
                spec.flush(node);
            }
            for (slot, addr) in addrs.iter().enumerate() {
                let home = spec.homes[slot];
                let real = dsm.get(NodeId(home as u32), &mut clocks[home], *addr);
                assert_eq!(
                    real, spec.main[slot],
                    "seed {seed}: {protocol:?} directory-transport final state, slot {slot}"
                );
            }
        }
    });
}

/// Hint-driven prefetches (and the deferred flushing that ships with the
/// directory transport) never change an application's digest, across
/// randomised problem instances of the two apps whose access patterns
/// actually draw hints.
#[test]
fn app_digests_are_invariant_under_the_directory_transport() {
    use hyperion_workspace::apps::{asp, jacobi};
    use hyperion_workspace::HyperionConfig;

    let config = |transport: &TransportConfig| {
        HyperionConfig::builder()
            .cluster(myrinet_200())
            .nodes(3)
            .protocol(ProtocolKind::JavaPf)
            .transport(transport.clone())
            .build()
            .expect("valid property configuration")
    };
    property(4, |seed, rng| {
        // Sizes chosen so rows regularly span page boundaries (the pattern
        // that draws successor-pair hints) without making the run slow.
        let jacobi_params = jacobi::JacobiParams {
            size: 40 + rng.gen_range(0u64..5) as usize * 10,
            steps: 3 + rng.gen_range(0u64..3) as usize,
        };
        let base = jacobi::run(config(&TransportConfig::default()), &jacobi_params);
        let dir = jacobi::run(config(&TransportConfig::directory()), &jacobi_params);
        assert_eq!(
            base.result, dir.result,
            "seed {seed}: directory transport changed Jacobi's answer ({jacobi_params:?})"
        );

        let asp_params = asp::AspParams {
            vertices: 36 + rng.gen_range(0u64..4) as usize * 12,
            seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(7),
            edge_percent: 20 + rng.gen_range(0u64..40) as u32,
        };
        let base = asp::run(config(&TransportConfig::default()), &asp_params);
        let dir = asp::run(config(&TransportConfig::directory()), &asp_params);
        assert_eq!(
            base.result, dir.result,
            "seed {seed}: directory transport changed ASP's answer ({asp_params:?})"
        );
    });
}

/// One step of the random *slice* program used by the bulk-equivalence
/// model check.
#[derive(Clone, Debug)]
enum SliceOp {
    Write { node: u8, start: u16, len: u16 },
    Read { node: u8, start: u16, len: u16 },
    Flush { node: u8 },
    Invalidate { node: u8 },
}

/// Slices must stay inside one home's (contiguous) region: the per-home
/// regions are page-aligned and therefore *not* adjacent in the global
/// address space, so a slice crossing regions would not be comparable with
/// the element-wise loop over `addrs`.
fn random_slice_ops(
    rng: &mut StdRng,
    nodes: u8,
    slots_per_home: u16,
    max_len: usize,
) -> Vec<SliceOp> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            let region = rng.gen_range(0..nodes as u16);
            let offset = rng.gen_range(0..slots_per_home);
            let start = region * slots_per_home + offset;
            let span = rng.gen_range(0..slots_per_home - offset) + 1;
            match rng.gen_range(0u32..4) {
                0 | 1 => SliceOp::Write {
                    node: rng.gen_range(0..nodes),
                    start,
                    len: span,
                },
                2 => SliceOp::Read {
                    node: rng.gen_range(0..nodes),
                    start,
                    len: span,
                },
                _ => {
                    if rng.gen_range(0u32..2) == 0 {
                        SliceOp::Flush {
                            node: rng.gen_range(0..nodes),
                        }
                    } else {
                        SliceOp::Invalidate {
                            node: rng.gen_range(0..nodes),
                        }
                    }
                }
            }
        })
        .collect()
}

/// Bulk `read_slice` / `write_slice` produce identical values and identical
/// final main memory as the element-wise loop, under both protocols, and
/// their statistics obey the per-page detection contract: same element and
/// page traffic, never more in-line checks.
#[test]
fn bulk_slice_transfers_match_the_elementwise_loop() {
    // Two pages per home so slices regularly span a page boundary.
    let slots_per_home = hyperion_workspace::pm2::SLOTS_PER_PAGE + 24;
    let nodes = 2usize;
    property(24, |seed, rng| {
        let ops = random_slice_ops(rng, nodes as u8, slots_per_home as u16, 40);
        for protocol in [ProtocolKind::JavaIc, ProtocolKind::JavaPf] {
            let (dsm_b, addrs_b, _) = build_dsm(protocol, nodes, slots_per_home);
            let (dsm_e, addrs_e, homes) = build_dsm(protocol, nodes, slots_per_home);
            let mut clocks_b: Vec<ThreadClock> = (0..nodes).map(|_| ThreadClock::new()).collect();
            let mut clocks_e: Vec<ThreadClock> = (0..nodes).map(|_| ThreadClock::new()).collect();
            let mut fill = 0u64;

            for op in &ops {
                match *op {
                    SliceOp::Write { node, start, len } => {
                        let (node, start, len) = (node as usize, start as usize, len as usize);
                        let values: Vec<u64> = (0..len)
                            .map(|i| {
                                fill = fill.wrapping_add(0x9E37_79B9_7F4A_7C15);
                                fill ^ i as u64
                            })
                            .collect();
                        dsm_b.write_slice(
                            NodeId(node as u32),
                            &mut clocks_b[node],
                            addrs_b[start],
                            &values,
                        );
                        for (i, v) in values.iter().enumerate() {
                            dsm_e.put(
                                NodeId(node as u32),
                                &mut clocks_e[node],
                                addrs_e[start + i],
                                *v,
                            );
                        }
                    }
                    SliceOp::Read { node, start, len } => {
                        let (node, start, len) = (node as usize, start as usize, len as usize);
                        let mut bulk = vec![0u64; len];
                        dsm_b.read_slice(
                            NodeId(node as u32),
                            &mut clocks_b[node],
                            addrs_b[start],
                            &mut bulk,
                        );
                        let elem: Vec<u64> = (0..len)
                            .map(|i| {
                                dsm_e.get(
                                    NodeId(node as u32),
                                    &mut clocks_e[node],
                                    addrs_e[start + i],
                                )
                            })
                            .collect();
                        assert_eq!(
                            bulk, elem,
                            "seed {seed}: {protocol:?} slice read mismatch at {start}+{len}"
                        );
                    }
                    SliceOp::Flush { node } => {
                        let node = node as usize;
                        dsm_b.update_main_memory(NodeId(node as u32), &mut clocks_b[node]);
                        dsm_e.update_main_memory(NodeId(node as u32), &mut clocks_e[node]);
                    }
                    SliceOp::Invalidate { node } => {
                        let node = node as usize;
                        dsm_b.invalidate_cache(NodeId(node as u32), &mut clocks_b[node]);
                        dsm_e.invalidate_cache(NodeId(node as u32), &mut clocks_e[node]);
                    }
                }
            }

            // Quiesce both systems and compare main memory slot by slot.
            for node in 0..nodes {
                dsm_b.update_main_memory(NodeId(node as u32), &mut clocks_b[node]);
                dsm_e.update_main_memory(NodeId(node as u32), &mut clocks_e[node]);
            }
            for (slot, home) in homes.iter().enumerate() {
                let vb = dsm_b.get(NodeId(*home as u32), &mut clocks_b[*home], addrs_b[slot]);
                let ve = dsm_e.get(NodeId(*home as u32), &mut clocks_e[*home], addrs_e[slot]);
                assert_eq!(vb, ve, "seed {seed}: {protocol:?} final slot {slot}");
            }

            // Statistics invariants: identical element and page traffic,
            // identical flush traffic, and never more in-line checks on the
            // bulk side.
            let sb: StatsSnapshot = dsm_b.cluster().total_stats();
            let se: StatsSnapshot = dsm_e.cluster().total_stats();
            assert_eq!(sb.field_reads, se.field_reads, "seed {seed}: {protocol:?}");
            assert_eq!(
                sb.field_writes, se.field_writes,
                "seed {seed}: {protocol:?}"
            );
            assert_eq!(sb.page_loads, se.page_loads, "seed {seed}: {protocol:?}");
            assert_eq!(
                sb.diff_slots_flushed, se.diff_slots_flushed,
                "seed {seed}: {protocol:?}"
            );
            assert_eq!(
                sb.pages_invalidated, se.pages_invalidated,
                "seed {seed}: {protocol:?}"
            );
            assert!(
                sb.locality_checks <= se.locality_checks,
                "seed {seed}: {protocol:?} bulk side performed more checks"
            );
            match protocol {
                ProtocolKind::JavaIc => {
                    assert_eq!(sb.page_faults, 0, "seed {seed}");
                    assert_eq!(sb.mprotect_calls, 0, "seed {seed}");
                }
                ProtocolKind::JavaPf => {
                    assert_eq!(sb.locality_checks, 0, "seed {seed}");
                    assert!(sb.mprotect_calls >= sb.page_faults, "seed {seed}");
                    assert_eq!(sb.page_faults, se.page_faults, "seed {seed}");
                }
                // The loop exercises the paper's protocols; java_ad has its
                // own equivalence suite in tests/protocol_equivalence.rs
                // (its speculative prefetching legitimately reshapes the
                // per-run page traffic this test pins down exactly).
                ProtocolKind::JavaAd => unreachable!(),
            }
        }
    });
}

/// Virtual time never decreases and only `java_ic` performs checks.
#[test]
fn protocol_costs_are_monotone_and_protocol_specific() {
    property(32, |seed, rng| {
        let ops = random_ops(rng, 2, 8, 60);
        for protocol in [ProtocolKind::JavaIc, ProtocolKind::JavaPf] {
            let (dsm, addrs, _homes) = build_dsm(protocol, 2, 4);
            let mut clock = ThreadClock::new();
            let mut last = VTime::ZERO;
            for op in &ops {
                match *op {
                    DsmOp::Put { slot, value, .. } => dsm.put(
                        NodeId(0),
                        &mut clock,
                        addrs[slot as usize % addrs.len()],
                        value,
                    ),
                    DsmOp::Get { slot, .. } => {
                        let _ = dsm.get(NodeId(0), &mut clock, addrs[slot as usize % addrs.len()]);
                    }
                    DsmOp::Flush { .. } => dsm.update_main_memory(NodeId(0), &mut clock),
                    DsmOp::Invalidate { .. } => dsm.invalidate_cache(NodeId(0), &mut clock),
                }
                assert!(clock.now() >= last, "seed {seed}: time went backwards");
                last = clock.now();
            }
            let stats = dsm.cluster().total_stats();
            match protocol {
                ProtocolKind::JavaIc => {
                    assert_eq!(stats.page_faults, 0, "seed {seed}");
                    assert_eq!(stats.mprotect_calls, 0, "seed {seed}");
                    assert_eq!(
                        stats.locality_checks,
                        stats.field_reads + stats.field_writes,
                        "seed {seed}"
                    );
                }
                ProtocolKind::JavaPf => {
                    assert_eq!(stats.locality_checks, 0, "seed {seed}");
                    assert!(stats.mprotect_calls >= stats.page_faults, "seed {seed}");
                }
                ProtocolKind::JavaAd => unreachable!(),
            }
        }
    });
}

/// The iso-address allocator never hands out overlapping ranges and always
/// records a home for every allocated page.
#[test]
fn allocator_ranges_never_overlap() {
    property(40, |seed, rng| {
        let alloc = IsoAllocator::new(4);
        let mut seen: Vec<(u64, u64)> = Vec::new();
        let count = rng.gen_range(1usize..40);
        for _ in 0..count {
            let slots = rng.gen_range(1usize..200);
            let home = rng.gen_range(0u32..4);
            let addr = alloc.alloc(slots, NodeId(home));
            let start = addr.0;
            let end = start + slots as u64;
            for &(s, e) in &seen {
                assert!(
                    end <= s || start >= e,
                    "seed {seed}: ranges [{start},{end}) and [{s},{e}) overlap"
                );
            }
            // Every page of the range is homed on the requested node.
            for page in addr.page().0..=addr.offset(slots as u64 - 1).page().0 {
                assert_eq!(alloc.home_of(PageId(page)), NodeId(home), "seed {seed}");
            }
            seen.push((start, end));
        }
    });
}

/// `block_range` tiles the index space for arbitrary sizes.
#[test]
fn block_range_tiles_any_size() {
    property(100, |seed, rng| {
        let total = rng.gen_range(0usize..10_000);
        let parts = rng.gen_range(1usize..64);
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for idx in 0..parts {
            let (s, e) = hyperion_workspace::apps::block_range(total, parts, idx);
            assert_eq!(s, prev_end, "seed {seed}: blocks must be contiguous");
            assert!(e >= s, "seed {seed}");
            assert!(e - s <= total / parts + 1, "seed {seed}: unbalanced block");
            covered += e - s;
            prev_end = e;
        }
        assert_eq!(covered, total, "seed {seed}");
    });
}

/// Every byte-precise wire form in `dsm::diff` survives an encode → decode
/// round trip: single and batched page-fetch requests (including the
/// hint-suppression tag bit), single and batched field-granularity diffs.
#[test]
fn diff_wire_encodings_round_trip() {
    use hyperion_workspace::dsm::diff::{
        decode_diff_message, decode_page_fetch_request, encode_diff, encode_diff_batch,
        encode_page_batch_request, encode_page_request, encode_page_request_nohint, DiffEntry,
    };
    use hyperion_workspace::pm2::SLOTS_PER_PAGE;

    // Real page numbers never use the top bit (it is the batch / no-hint
    // tag), so the generator stays below it.
    let random_page = |rng: &mut StdRng| PageId(rng.gen_range(0u64..1 << 40));
    let random_entries = |rng: &mut StdRng, max: usize| -> Vec<DiffEntry> {
        let len = rng.gen_range(0..max);
        (0..len)
            .map(|_| {
                (
                    rng.gen_range(0..SLOTS_PER_PAGE as u16),
                    rng.gen_range(0u64..u64::MAX),
                )
            })
            .collect()
    };

    property(64, |seed, rng| {
        // Page-fetch requests, all three encoders, one decoder.
        let page = random_page(rng);
        assert_eq!(
            decode_page_fetch_request(&encode_page_request(page)),
            (page, 1, true),
            "seed {seed}"
        );
        assert_eq!(
            decode_page_fetch_request(&encode_page_request_nohint(page)),
            (page, 1, false),
            "seed {seed}"
        );
        let count = rng.gen_range(1u32..64);
        assert_eq!(
            decode_page_fetch_request(&encode_page_batch_request(page, count)),
            (page, count, true),
            "seed {seed}"
        );

        // Single diff.
        let entries = random_entries(rng, 40);
        assert_eq!(
            decode_diff_message(&encode_diff(page, &entries)),
            vec![(page, entries)],
            "seed {seed}"
        );

        // Batched diff over contiguous pages.
        let first = random_page(rng);
        let pages: Vec<Vec<DiffEntry>> = (0..rng.gen_range(1usize..6))
            .map(|_| random_entries(rng, 20))
            .collect();
        let expected: Vec<(PageId, Vec<DiffEntry>)> = pages
            .iter()
            .enumerate()
            .map(|(k, e)| (PageId(first.0 + k as u64), e.clone()))
            .collect();
        assert_eq!(
            decode_diff_message(&encode_diff_batch(first, &pages)),
            expected,
            "seed {seed}"
        );
    });
}

/// The prefetch-directory hint trailer piggybacked on page-fetch replies
/// parses back to exactly the page data and hint runs that went in, for
/// arbitrary reply sizes and hint sets (including none).
#[test]
fn fetch_reply_hint_trailers_round_trip() {
    use hyperion_workspace::dsm::diff::{append_fetch_hints, split_fetch_reply, HintRun};
    use hyperion_workspace::pm2::SLOTS_PER_PAGE;

    property(64, |seed, rng| {
        let pages = rng.gen_range(1usize..4);
        let data: Vec<u8> = (0..pages * SLOTS_PER_PAGE * 8)
            .map(|_| rng.gen_range(0u8..u8::MAX))
            .collect();
        let hints: Vec<HintRun> = (0..rng.gen_range(0usize..8))
            .map(|_| {
                (
                    PageId(rng.gen_range(0u64..1 << 40)),
                    rng.gen_range(1u16..512),
                )
            })
            .collect();

        let mut reply = data.clone();
        append_fetch_hints(&mut reply, &hints);
        if hints.is_empty() {
            // No trailer is appended for an empty hint set: the reply stays
            // byte-identical to the raw page data.
            assert_eq!(reply, data, "seed {seed}");
        }
        let (got_data, got_hints) = split_fetch_reply(&reply, pages);
        assert_eq!(got_data, &data[..], "seed {seed}: page data corrupted");
        assert_eq!(got_hints, hints, "seed {seed}: hint runs corrupted");
    });
}

/// The socket transport's frame header round-trips for every kind and every
/// field value, and the decoder *rejects* (never panics on) truncated
/// bodies and unknown kind tags — this is the boundary where bytes from
/// another process enter the node.
#[test]
fn socket_frames_round_trip_and_reject_garbage() {
    use hyperion_workspace::pm2::socket::{
        decode_frame, encode_frame, FrameHeader, FrameKind, FRAME_HEADER_BYTES,
    };

    property(64, |seed, rng| {
        let kind = match rng.gen_range(0u32..3) {
            0 => FrameKind::Request,
            1 => FrameKind::Reply,
            _ => FrameKind::Error,
        };
        let header = FrameHeader {
            kind,
            service: rng.gen_range(0u32..u32::MAX),
            from: rng.gen_range(0u32..u32::MAX),
            to: rng.gen_range(0u32..u32::MAX),
            aux: rng.gen_range(0u64..u64::MAX),
        };
        let payload: Vec<u8> = (0..rng.gen_range(0usize..200))
            .map(|_| rng.gen_range(0u8..u8::MAX))
            .collect();

        let frame = encode_frame(header, &payload);
        let body_len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
        assert_eq!(
            body_len,
            frame.len() - 4,
            "seed {seed}: length prefix disagrees with the body"
        );
        assert_eq!(body_len, FRAME_HEADER_BYTES + payload.len(), "seed {seed}");

        let body = &frame[4..];
        let (got_header, got_payload) = decode_frame(body)
            .unwrap_or_else(|e| panic!("seed {seed}: well-formed frame rejected: {e}"));
        assert_eq!(got_header, header, "seed {seed}");
        assert_eq!(got_payload, &payload[..], "seed {seed}");

        // Every truncation of the header region is an error, not a panic.
        let cut = rng.gen_range(0..FRAME_HEADER_BYTES);
        assert!(
            decode_frame(&body[..cut]).is_err(),
            "seed {seed}: truncated body of {cut} bytes was accepted"
        );

        // An unknown kind tag is rejected with the full header present.
        let mut bad = body.to_vec();
        bad[0] = rng.gen_range(4u8..u8::MAX);
        assert!(
            decode_frame(&bad).is_err(),
            "seed {seed}: unknown kind tag {} was accepted",
            bad[0]
        );
    });
}

/// VTime arithmetic: saturating, commutative max, order-compatible.
#[test]
fn vtime_algebra() {
    property(200, |seed, rng| {
        let a = rng.gen_range(0u64..u64::MAX / 4);
        let b = rng.gen_range(0u64..u64::MAX / 4);
        let ta = VTime::from_ps(a);
        let tb = VTime::from_ps(b);
        assert_eq!(ta + tb, tb + ta, "seed {seed}");
        assert_eq!(ta.max(tb), tb.max(ta), "seed {seed}");
        assert!((ta + tb) >= ta, "seed {seed}");
        assert_eq!((ta + tb) - tb, ta, "seed {seed}");
        assert_eq!(ta.times(3).as_ps(), a * 3, "seed {seed}");
    });
}
