//! Protocol-equivalence properties of the adaptive protocol `java_ad`.
//!
//! The adaptive protocol re-decides the access-detection technique per page
//! at every invalidation and speculatively batches page fetches — none of
//! which may be observable at the application level.  For each of the five
//! benchmark programs these tests assert that:
//!
//! 1. `java_ic`, `java_pf` and `java_ad` compute the same answer;
//! 2. `java_ad`'s total modeled cost (virtual execution time) does not
//!    exceed the worse of the two fixed protocols;
//! 3. `java_ad` never inflates the modeled page traffic beyond the worse of
//!    the two fixed protocols.
//!
//! The dynamically scheduled apps (TSP branch-and-bound, Barnes-Hut's chunk
//! counter) do a schedule-dependent amount of work, so their absolute
//! page-load and time measurements vary between runs under *every*
//! protocol.  As in the `fig6_adaptive` bench gate, properties 2 and 3 are
//! therefore checked strictly on a first round and re-assessed in aggregate
//! over three fresh rounds when the first round misses — an adaptive
//! protocol that systematically inflated cost or traffic still fails.

use hyperion_workspace::apps::common::Benchmark;
use hyperion_workspace::apps::{asp, barnes, jacobi, pi, tsp};
use hyperion_workspace::prelude::*;
use hyperion_workspace::{HyperionConfig, ProtocolKind};

const NODES: usize = 3;

fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(pi::PiParams::quick()),
        Box::new(jacobi::JacobiParams::quick()),
        Box::new(barnes::BarnesParams::quick()),
        Box::new(tsp::TspParams::quick()),
        Box::new(asp::AspParams::quick()),
    ]
}

fn execute(bench: &dyn Benchmark, protocol: ProtocolKind) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .build()
        .expect("valid test configuration");
    bench.execute(config)
}

#[test]
fn all_three_protocols_compute_identical_results() {
    for bench in all_benchmarks() {
        let (ic, _) = execute(bench.as_ref(), ProtocolKind::JavaIc);
        let (pf, _) = execute(bench.as_ref(), ProtocolKind::JavaPf);
        let (ad, _) = execute(bench.as_ref(), ProtocolKind::JavaAd);
        // Pi's global sum accumulates thread contributions in monitor
        // acquisition order, so its digest is only reproducible to floating
        // point re-association; every other app is order-independent.
        let tolerance = ic.abs().max(1.0) * 1e-9;
        assert!(
            (ic - pf).abs() <= tolerance,
            "{}: ic {ic} vs pf {pf}",
            bench.name()
        );
        assert!(
            (ic - ad).abs() <= tolerance,
            "{}: ic {ic} vs ad {ad}",
            bench.name()
        );
    }
}

#[test]
fn adaptive_cost_never_exceeds_the_worse_fixed_protocol() {
    for bench in all_benchmarks() {
        let round = || {
            let (_, ic) = execute(bench.as_ref(), ProtocolKind::JavaIc);
            let (_, pf) = execute(bench.as_ref(), ProtocolKind::JavaPf);
            let (_, ad) = execute(bench.as_ref(), ProtocolKind::JavaAd);
            (
                ic.execution_time
                    .as_secs_f64()
                    .max(pf.execution_time.as_secs_f64()),
                ad.execution_time.as_secs_f64(),
            )
        };
        let (worst, ad) = round();
        // 2% headroom for virtual-time jitter from host scheduling.
        if ad <= worst * 1.02 {
            continue;
        }
        let mut worst_total = 0.0;
        let mut ad_total = 0.0;
        for _ in 0..3 {
            let (w, a) = round();
            worst_total += w;
            ad_total += a;
        }
        assert!(
            ad_total <= worst_total * 1.02,
            "{}: java_ad cost {ad_total:.6}s exceeds the worse of ic/pf \
             {worst_total:.6}s aggregated over 3 rounds",
            bench.name()
        );
    }
}

#[test]
fn adaptive_page_loads_never_exceed_the_worse_fixed_protocol() {
    for bench in all_benchmarks() {
        let round = || {
            let (_, ic) = execute(bench.as_ref(), ProtocolKind::JavaIc);
            let (_, pf) = execute(bench.as_ref(), ProtocolKind::JavaPf);
            let (_, ad) = execute(bench.as_ref(), ProtocolKind::JavaAd);
            (
                ic.total_stats().page_loads.max(pf.total_stats().page_loads),
                ad.total_stats().page_loads,
            )
        };
        let (worst, ad) = round();
        if ad <= worst {
            continue;
        }
        let mut worst_total = 0u64;
        let mut ad_total = 0u64;
        for _ in 0..3 {
            let (w, a) = round();
            worst_total += w;
            ad_total += a;
        }
        assert!(
            ad_total <= worst_total,
            "{}: java_ad page loads {ad_total} exceed the worse of ic/pf \
             {worst_total} aggregated over 3 rounds",
            bench.name()
        );
    }
}

#[test]
fn adaptive_speculation_waste_stays_throttled() {
    // The waste-feedback throttle must keep speculative prefetching from
    // running away on every app: wasted prefetches are bounded by a
    // sixteenth of the *speculative* prefetches (bulk-covered riders never
    // waste and are excluded from the ratio), plus each node's start-up
    // allowance and one last in-flight batch that may complete after the
    // throttle trips.
    for bench in all_benchmarks() {
        let (_, report) = execute(bench.as_ref(), ProtocolKind::JavaAd);
        let total = report.total_stats();
        assert!(
            total.pages_prefetch_wasted <= total.pages_prefetch_speculative / 16 + 9 * NODES as u64,
            "{}: wasted {} of {} speculative prefetches",
            bench.name(),
            total.pages_prefetch_wasted,
            total.pages_prefetch_speculative,
        );
        // Consistency: every batched fetch carried at least one extra page,
        // and speculative riders are a subset of all riders.
        assert!(total.pages_prefetched >= total.batched_fetches);
        assert!(total.pages_prefetch_speculative <= total.pages_prefetched);
    }
}
