//! Protocol-equivalence properties of the adaptive protocol `java_ad`.
//!
//! The adaptive protocol re-decides the access-detection technique per page
//! at every invalidation and speculatively batches page fetches — none of
//! which may be observable at the application level.  For each of the five
//! benchmark programs these tests assert that:
//!
//! 1. `java_ic`, `java_pf` and `java_ad` compute the same answer;
//! 2. `java_ad`'s total modeled cost (virtual execution time) does not
//!    exceed the worse of the two fixed protocols;
//! 3. `java_ad` never inflates the modeled page traffic beyond the worse of
//!    the two fixed protocols.
//!
//! The dynamically scheduled apps (TSP branch-and-bound, Barnes-Hut's chunk
//! counter) do a schedule-dependent amount of work, so their absolute
//! page-load and time measurements vary between runs under *every*
//! protocol.  As in the `fig6_adaptive` bench gate, properties 2 and 3 are
//! therefore checked strictly on a first round and re-assessed in aggregate
//! over three fresh rounds when the first round misses — an adaptive
//! protocol that systematically inflated cost or traffic still fails.

use hyperion_workspace::apps::common::Benchmark;
use hyperion_workspace::apps::{asp, barnes, graph, jacobi, kvstore, pi, tsp};
use hyperion_workspace::dsm::policy::{
    DetectionSpec, FlushSpec, MigrationSpec, PolicySpec, PredictorSpec, ReplicationSpec,
    TopologySpec,
};
use hyperion_workspace::dsm::AdaptiveParams;
use hyperion_workspace::prelude::*;
use hyperion_workspace::{HyperionConfig, ProtocolKind, TransportBackend, TransportConfig};

const NODES: usize = 3;

/// The transport the suite treats as its default.  CI re-runs the whole
/// suite once with `HYPERION_EQUIV_TRANSPORT` set to a non-default —
/// but semantics-preserving — policy mix, so every equivalence property is
/// also exercised with the latency-hiding / directory policies selected.
fn base_transport() -> TransportConfig {
    match std::env::var("HYPERION_EQUIV_TRANSPORT").as_deref() {
        Ok("latency-hiding") => TransportConfig::latency_hiding(),
        Ok("directory") => TransportConfig::directory(),
        Ok(other) => panic!("unknown HYPERION_EQUIV_TRANSPORT policy mix `{other}`"),
        Err(_) => TransportConfig::default(),
    }
}

fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(pi::PiParams::quick()),
        Box::new(jacobi::JacobiParams::quick()),
        Box::new(barnes::BarnesParams::quick()),
        Box::new(tsp::TspParams::quick()),
        Box::new(asp::AspParams::quick()),
    ]
}

/// The serving-style workloads (figure 9).  They share the digest and
/// mechanism-bound properties with the paper's batch kernels but not the
/// adaptive cost/traffic dominance ones: a Zipf-skewed request stream gives
/// the adaptive protocol's speculative warm-up a page or two of genuine
/// overhead over the better fixed protocol, which the serving gate prices
/// in throughput (see `fig9_serving`) rather than in raw page loads.
fn serving_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(kvstore::KvStoreParams::quick()),
        Box::new(graph::PageRankParams::quick()),
    ]
}

fn execute(bench: &dyn Benchmark, protocol: ProtocolKind) -> (f64, RunReport) {
    execute_with(bench, protocol, &base_transport())
}

fn execute_with(
    bench: &dyn Benchmark,
    protocol: ProtocolKind,
    transport: &TransportConfig,
) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .transport(transport.clone())
        .build()
        .expect("valid test configuration");
    bench.execute(config)
}

/// Like [`execute_with`] but with an explicit [`PolicySpec`] on top of the
/// transport — the typed surface the policy layer added.
fn execute_with_policies(
    bench: &dyn Benchmark,
    protocol: ProtocolKind,
    transport: &TransportConfig,
    policies: PolicySpec,
) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .transport(transport.clone())
        .policies(policies)
        .build()
        .expect("valid test configuration");
    bench.execute(config)
}

/// Like [`execute_with`] but with conservative pacing disabled — used for
/// wall-time comparisons of the statically partitioned apps, where pacing
/// only injects host-scheduling noise into the modeled times.
fn execute_unpaced(
    bench: &dyn Benchmark,
    protocol: ProtocolKind,
    transport: &TransportConfig,
) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .transport(transport.clone())
        .pacing_window(None)
        .build()
        .expect("valid test configuration");
    bench.execute(config)
}

#[test]
fn all_three_protocols_compute_identical_results() {
    for bench in all_benchmarks() {
        let (ic, _) = execute(bench.as_ref(), ProtocolKind::JavaIc);
        let (pf, _) = execute(bench.as_ref(), ProtocolKind::JavaPf);
        let (ad, _) = execute(bench.as_ref(), ProtocolKind::JavaAd);
        // Pi's global sum accumulates thread contributions in monitor
        // acquisition order, so its digest is only reproducible to floating
        // point re-association; every other app is order-independent.
        let tolerance = ic.abs().max(1.0) * 1e-9;
        assert!(
            (ic - pf).abs() <= tolerance,
            "{}: ic {ic} vs pf {pf}",
            bench.name()
        );
        assert!(
            (ic - ad).abs() <= tolerance,
            "{}: ic {ic} vs ad {ad}",
            bench.name()
        );
    }
}

#[test]
fn serving_apps_preserve_digests_across_protocols_and_backends() {
    // The serving workloads draw their request streams from seeded
    // generators and commit every write under a monitor, so the digest must
    // be bit-for-bit reproducible across all three protocols and across the
    // in-process simulator vs the Unix-domain socket backend — and every
    // run must actually report serving ops with a non-zero modeled p99.
    let socket = TransportConfig {
        backend: TransportBackend::UnixSocket,
        ..TransportConfig::default()
    };
    for bench in serving_benchmarks() {
        let (reference, _) = execute(bench.as_ref(), ProtocolKind::JavaIc);
        let tolerance = reference.abs().max(1.0) * 1e-9;
        for protocol in [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ] {
            for (label, transport) in [
                ("sim", TransportConfig::default()),
                ("socket", socket.clone()),
            ] {
                let (digest, report) = execute_with(bench.as_ref(), protocol, &transport);
                assert!(
                    (digest - reference).abs() <= tolerance,
                    "{}/{} ({label}): digest {digest} diverged from the ic/sim \
                     reference {reference}",
                    bench.name(),
                    protocol.name()
                );
                let total = report.total_stats();
                assert!(
                    total.serving_ops > 0,
                    "{}/{} ({label}): no serving ops recorded",
                    bench.name(),
                    protocol.name()
                );
                assert!(
                    report.serving_p99 > VTime::ZERO,
                    "{}/{} ({label}): zero modeled p99 over {} ops",
                    bench.name(),
                    protocol.name(),
                    total.serving_ops
                );
            }
        }
    }
}

#[test]
fn adaptive_cost_never_exceeds_the_worse_fixed_protocol() {
    for bench in all_benchmarks() {
        let round = || {
            let (_, ic) = execute(bench.as_ref(), ProtocolKind::JavaIc);
            let (_, pf) = execute(bench.as_ref(), ProtocolKind::JavaPf);
            let (_, ad) = execute(bench.as_ref(), ProtocolKind::JavaAd);
            (
                ic.execution_time
                    .as_secs_f64()
                    .max(pf.execution_time.as_secs_f64()),
                ad.execution_time.as_secs_f64(),
            )
        };
        let (worst, ad) = round();
        // 2% headroom for virtual-time jitter from host scheduling.
        if ad <= worst * 1.02 {
            continue;
        }
        let mut worst_total = 0.0;
        let mut ad_total = 0.0;
        for _ in 0..3 {
            let (w, a) = round();
            worst_total += w;
            ad_total += a;
        }
        assert!(
            ad_total <= worst_total * 1.02,
            "{}: java_ad cost {ad_total:.6}s exceeds the worse of ic/pf \
             {worst_total:.6}s aggregated over 3 rounds",
            bench.name()
        );
    }
}

#[test]
fn adaptive_page_loads_never_exceed_the_worse_fixed_protocol() {
    for bench in all_benchmarks() {
        let round = || {
            let (_, ic) = execute(bench.as_ref(), ProtocolKind::JavaIc);
            let (_, pf) = execute(bench.as_ref(), ProtocolKind::JavaPf);
            let (_, ad) = execute(bench.as_ref(), ProtocolKind::JavaAd);
            (
                ic.total_stats().page_loads.max(pf.total_stats().page_loads),
                ad.total_stats().page_loads,
            )
        };
        let (worst, ad) = round();
        if ad <= worst {
            continue;
        }
        let mut worst_total = 0u64;
        let mut ad_total = 0u64;
        for _ in 0..5 {
            let (w, a) = round();
            worst_total += w;
            ad_total += a;
        }
        assert!(
            ad_total <= worst_total,
            "{}: java_ad page loads {ad_total} exceed the worse of ic/pf \
             {worst_total} aggregated over 5 rounds",
            bench.name()
        );
    }
}

#[test]
fn all_three_protocols_compute_identical_results_under_latency_hiding_transport() {
    // Overlapped fetches, batched diff flushing and home migration all on:
    // the transport may change *when* latency is charged and *how many*
    // RPCs carry the bytes, never what a program computes.
    let transport = TransportConfig::latency_hiding();
    for bench in all_benchmarks() {
        let (ic, _) = execute_with(bench.as_ref(), ProtocolKind::JavaIc, &transport);
        let (pf, _) = execute_with(bench.as_ref(), ProtocolKind::JavaPf, &transport);
        let (ad, _) = execute_with(bench.as_ref(), ProtocolKind::JavaAd, &transport);
        // And each must agree with the blocking transport's answer.
        let (blocking, _) = execute(bench.as_ref(), ProtocolKind::JavaIc);
        let tolerance = ic.abs().max(1.0) * 1e-9;
        for (label, v) in [("pf", pf), ("ad", ad), ("blocking ic", blocking)] {
            assert!(
                (ic - v).abs() <= tolerance,
                "{}: overlapped ic {ic} vs {label} {v}",
                bench.name()
            );
        }
    }
}

#[test]
fn overlapped_transport_never_costs_wall_time_over_blocking() {
    // The split transactions only defer when fetch latency is charged, so
    // the modeled wall time with overlap must not exceed the blocking
    // baseline on any app.  The claim decomposes per app:
    //
    // * Pi, TSP and Barnes-Hut open no prefetch windows under `java_pf`, so
    //   the two transports run a mechanism-identical engine — the property
    //   holds by construction, which the run itself proves by recording
    //   zero split transactions.  (A raw time comparison would only compare
    //   two draws of their schedule-chaotic exploration.)
    // * Jacobi and ASP do open windows; their modeled times are compared
    //   directly, unpaced (they divide work statically, so pacing only adds
    //   host-scheduling noise), strictly first and in aggregate on a miss.
    let overlapped = TransportConfig {
        overlapped_fetches: true,
        ..TransportConfig::default()
    };
    for bench in [
        Box::new(pi::PiParams::quick()) as Box<dyn Benchmark>,
        Box::new(tsp::TspParams::quick()),
        Box::new(barnes::BarnesParams::quick()),
    ] {
        let (_, split) = execute_with(bench.as_ref(), ProtocolKind::JavaPf, &overlapped);
        assert_eq!(
            split.total_stats().fetch_overlap_cycles_hidden,
            0,
            "{}: no prefetch windows, so the overlapped transport must have \
             run identically to the blocking one",
            bench.name()
        );
    }
    for bench in [
        Box::new(jacobi::JacobiParams::quick()) as Box<dyn Benchmark>,
        Box::new(asp::AspParams::quick()),
    ] {
        let round = || {
            let (_, blocking) = execute_unpaced(
                bench.as_ref(),
                ProtocolKind::JavaPf,
                &TransportConfig::default(),
            );
            let (_, split) = execute_unpaced(bench.as_ref(), ProtocolKind::JavaPf, &overlapped);
            (
                blocking.execution_time.as_secs_f64(),
                split.execution_time.as_secs_f64(),
            )
        };
        let (blocking, split) = round();
        if split <= blocking * 1.02 {
            continue;
        }
        let mut blocking_total = 0.0;
        let mut split_total = 0.0;
        for _ in 0..5 {
            let (b, s) = round();
            blocking_total += b;
            split_total += s;
        }
        assert!(
            split_total <= blocking_total * 1.02,
            "{}: overlapped transport cost {split_total:.6}s exceeds the blocking \
             baseline {blocking_total:.6}s aggregated over 5 rounds",
            bench.name()
        );
    }
}

#[test]
fn home_migration_preserves_results_and_bounds_diff_inflation() {
    // The strict *reduction* property lives in the fig7 gate, which runs
    // the central-structure apps at 4 nodes where a remote writer can
    // actually dominate.  Migration is a heuristic: on a workload whose
    // writers rotate faster than the dominance vote can track (TSP at 3
    // nodes, where the home owns a third of the queue traffic), a grant
    // made during a home-quiet burst turns some of the home's later writes
    // into diffs.  What must hold *unconditionally* is that the answers are
    // unchanged and that the per-page exponential back-off keeps any such
    // inflation bounded — the diff traffic may not blow past 2× the
    // baseline on any app.
    let migrating = TransportConfig {
        home_migration: true,
        ..TransportConfig::default()
    };
    for bench in all_benchmarks() {
        let mut base_total = 0u64;
        let mut mig_total = 0u64;
        for _ in 0..3 {
            let (d0, base) = execute(bench.as_ref(), ProtocolKind::JavaAd);
            let (d1, mig) = execute_with(bench.as_ref(), ProtocolKind::JavaAd, &migrating);
            assert!(
                (d0 - d1).abs() <= d0.abs().max(1.0) * 1e-9,
                "{}: migration changed the answer",
                bench.name()
            );
            base_total += base.total_stats().diff_messages;
            mig_total += mig.total_stats().diff_messages;
        }
        assert!(
            mig_total <= base_total * 2 + 16,
            "{}: migration inflated diff RPCs past the back-off bound \
             ({mig_total} vs {base_total})",
            bench.name()
        );
    }
}

#[test]
fn all_three_protocols_compute_identical_results_under_directory_transport() {
    // The prefetch directory (cluster-wide hints converted to in-flight
    // tickets) and deferred release flushing both only move *when* latency
    // is charged; neither may be observable at the application level.
    let transport = TransportConfig::directory();
    for bench in all_benchmarks() {
        let (ic, _) = execute_with(bench.as_ref(), ProtocolKind::JavaIc, &transport);
        let (pf, _) = execute_with(bench.as_ref(), ProtocolKind::JavaPf, &transport);
        let (ad, _) = execute_with(bench.as_ref(), ProtocolKind::JavaAd, &transport);
        // And each must agree with the blocking transport's answer.
        let (blocking, _) = execute(bench.as_ref(), ProtocolKind::JavaIc);
        let tolerance = ic.abs().max(1.0) * 1e-9;
        for (label, v) in [("pf", pf), ("ad", ad), ("blocking ic", blocking)] {
            assert!(
                (ic - v).abs() <= tolerance,
                "{}: directory ic {ic} vs {label} {v}",
                bench.name()
            );
        }
    }
}

#[test]
fn directory_hint_waste_stays_within_an_eighth_of_hints_sent() {
    // Cluster-wide bound over every app under the directory transport:
    // hinted pages invalidated untouched must stay within 1/8 of the hints
    // the homes sent (floor of 32 for near-hintless runs — PageRank's
    // irregular traversal yields only a couple dozen hints at quick scale,
    // and a few unlucky conversions must not trip the ratio on a sample
    // that small).
    let transport = TransportConfig::directory();
    for bench in all_benchmarks().into_iter().chain(serving_benchmarks()) {
        let (_, report) = execute_with(bench.as_ref(), ProtocolKind::JavaPf, &transport);
        let total = report.total_stats();
        assert!(
            total.hinted_fetches_wasted * 8 <= total.hints_sent.max(32),
            "{}: hint waste {} exceeds 1/8 of {} hints sent",
            bench.name(),
            total.hinted_fetches_wasted,
            total.hints_sent,
        );
        // Conversions are a subset of what was sent plus the abandoned
        // tickets re-armed at an acquire, and completions plus waste can
        // never exceed what was issued.
        assert!(total.hinted_fetches_issued <= total.hints_sent + total.hinted_fetches_reissued);
        assert!(
            total.hinted_fetches_completed + total.hinted_fetches_wasted
                <= total.hinted_fetches_issued
        );
    }
}

#[test]
fn socket_transport_preserves_every_digest() {
    // The Unix-domain socket backend serves each node's RPC handler table
    // from behind a real socket, but it carries the same byte-precise wire
    // payloads and charges the same caller-side virtual-time costs as the
    // in-process simulator — so every app must produce the same digest
    // under every protocol, and the run must report real wire traffic.
    let socket = TransportConfig {
        backend: TransportBackend::UnixSocket,
        ..TransportConfig::default()
    };
    for bench in all_benchmarks() {
        for protocol in [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ] {
            let (sim_digest, _) = execute(bench.as_ref(), protocol);
            let (sock_digest, report) = execute_with(bench.as_ref(), protocol, &socket);
            let tolerance = sim_digest.abs().max(1.0) * 1e-9;
            assert!(
                (sim_digest - sock_digest).abs() <= tolerance,
                "{}/{}: sim digest {sim_digest} vs socket digest {sock_digest}",
                bench.name(),
                protocol.name()
            );
            assert_eq!(report.transport, "unix-socket");
            // Every RPC round trip crossed the socket and was counted.
            let wire_rpcs: u64 = report.wire.iter().map(|(_, w)| w.messages).sum();
            assert_eq!(
                wire_rpcs,
                report.total_stats().rpc_requests,
                "{}/{}: wire round trips must match modeled RPC requests",
                bench.name(),
                protocol.name()
            );
        }
    }
}

#[test]
fn deferred_release_flushing_preserves_every_answer() {
    // Deferred flushing re-times the release-side diff RPCs (completion at
    // the next acquire of the same monitor); the bytes, their application
    // order at the homes, and therefore every answer must be unchanged.
    let deferred = TransportConfig {
        deferred_flush: true,
        ..TransportConfig::default()
    };
    for bench in all_benchmarks() {
        let (base, _) = execute(bench.as_ref(), ProtocolKind::JavaPf);
        let (defer, report) = execute_with(bench.as_ref(), ProtocolKind::JavaPf, &deferred);
        assert!(
            (base - defer).abs() <= base.abs().max(1.0) * 1e-9,
            "{}: deferred flushing changed the answer ({base} vs {defer})",
            bench.name()
        );
        // Diff traffic is identical in count — only its completion moved.
        let total = report.total_stats();
        assert!(
            total.deferred_flushes <= total.diff_messages,
            "{}: deferred flushes exceed diff messages",
            bench.name()
        );
    }
}

#[test]
fn adaptive_speculation_waste_stays_throttled() {
    // The waste-feedback throttle must keep speculative prefetching from
    // running away on every app: wasted prefetches are bounded by a
    // sixteenth of the *speculative* prefetches (bulk-covered riders never
    // waste and are excluded from the ratio), plus each node's start-up
    // allowance and one last in-flight batch that may complete after the
    // throttle trips.
    for bench in all_benchmarks().into_iter().chain(serving_benchmarks()) {
        let (_, report) = execute(bench.as_ref(), ProtocolKind::JavaAd);
        let total = report.total_stats();
        assert!(
            total.pages_prefetch_wasted <= total.pages_prefetch_speculative / 16 + 9 * NODES as u64,
            "{}: wasted {} of {} speculative prefetches",
            bench.name(),
            total.pages_prefetch_wasted,
            total.pages_prefetch_speculative,
        );
        // Consistency: every batched fetch carried at least one extra page,
        // and speculative riders are a subset of all riders.
        assert!(total.pages_prefetched >= total.batched_fetches);
        assert!(total.pages_prefetch_speculative <= total.pages_prefetched);
    }
}

/// The Noop/synchronous policy selection equivalent to every mechanism
/// flag being off, with the detection policy matching `protocol`.
fn noop_spec(protocol: ProtocolKind) -> PolicySpec {
    PolicySpec {
        detection: match protocol {
            ProtocolKind::JavaIc => DetectionSpec::InlineCheck,
            ProtocolKind::JavaPf => DetectionSpec::PageProtect,
            ProtocolKind::JavaAd => DetectionSpec::Adaptive(AdaptiveParams::default()),
        },
        predictor: PredictorSpec::Noop,
        migration: MigrationSpec::Noop,
        flush: FlushSpec::Batched { max_pages: 1 },
        replication: ReplicationSpec::Noop,
        topology: TopologySpec::Flat,
    }
}

/// A fixed, single-threaded access pattern: two remote multi-page arrays
/// read and written across four monitor epochs.  It exercises page
/// fetches, field-granularity diffs, invalidation epochs and — under
/// `java_ad` — per-page mode switches and batched speculative fetches.
/// With one OS thread the whole event sequence is deterministic, so two
/// runs of equivalent configurations must agree in *every* stat counter,
/// not just in aggregate.
fn deterministic_workload(
    protocol: ProtocolKind,
    transport: &TransportConfig,
    policies: Option<PolicySpec>,
) -> (u64, RunReport) {
    use hyperion_workspace::pm2::SLOTS_PER_PAGE;
    let mut builder = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .transport(transport.clone());
    if let Some(spec) = policies {
        builder = builder.policies(spec);
    }
    let config = builder.build().expect("valid test configuration");
    let rt = HyperionRuntime::new(config).expect("valid test runtime");
    let outcome = rt.run(|ctx| {
        let slots = (3 * SLOTS_PER_PAGE) as u64;
        let near = ctx.alloc_slots_page_aligned(slots as usize, NodeId(1));
        let far = ctx.alloc_slots_page_aligned(slots as usize, NodeId(2));
        let mon = ctx.new_monitor(NodeId(1));
        let mut acc = 0u64;
        for epoch in 1..=4u64 {
            mon.enter(ctx);
            // A strided sweep (re-fetches everything invalidated at the
            // acquire) plus a dense tail on the far array (drives java_ad
            // towards page faults and batched fetches on those pages).
            for k in (0..slots).step_by(97) {
                acc = acc.wrapping_add(ctx.get_slot(near.offset(k)));
                ctx.put_slot(near.offset(k), epoch.wrapping_mul(k + 1));
            }
            for k in slots - SLOTS_PER_PAGE as u64..slots {
                acc = acc.wrapping_add(ctx.get_slot(far.offset(k)));
                ctx.put_slot(far.offset(k), epoch.wrapping_add(k));
            }
            mon.exit(ctx);
        }
        acc
    });
    (outcome.result, outcome.report)
}

#[test]
fn noop_policies_are_byte_identical_to_disabled_flags() {
    // The legacy flag surface disables a mechanism by leaving its boolean
    // off; the policy surface disables it by selecting the `Noop` policy
    // (or the unbatched synchronous flush).  Both must drive the engine
    // down exactly the same path.  The deterministic single-threaded
    // workload pins that down to the strongest possible claim — every one
    // of the stat counters byte-identical, per node, under all three
    // protocols, on the in-process simulator and behind a real socket
    // alike.  (The five benchmark apps run real threads, whose host
    // interleaving perturbs even cluster-wide counter totals between runs
    // of the *same* configuration; see
    // `noop_policies_preserve_every_app_digest` for the app-level claim.)
    for backend in [TransportBackend::Sim, TransportBackend::UnixSocket] {
        let transport = TransportConfig {
            backend,
            ..TransportConfig::blocking()
        };
        for protocol in [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ] {
            let (flag_result, flag_report) = deterministic_workload(protocol, &transport, None);
            let (policy_result, policy_report) =
                deterministic_workload(protocol, &transport, Some(noop_spec(protocol)));
            assert_eq!(
                flag_result,
                policy_result,
                "{}/{backend:?}: Noop policies changed the computed result",
                protocol.name()
            );
            assert_eq!(flag_report.node_stats.len(), policy_report.node_stats.len());
            for (node, (flags, policies)) in flag_report
                .node_stats
                .iter()
                .zip(&policy_report.node_stats)
                .enumerate()
            {
                for ((counter, by_flag), (_, by_policy)) in
                    flags.fields().into_iter().zip(policies.fields())
                {
                    assert_eq!(
                        by_flag,
                        by_policy,
                        "{}/{backend:?} node {node}: `{counter}` differs between \
                         the disabled-flag and Noop-policy paths",
                        protocol.name()
                    );
                }
            }
        }
    }
}

#[test]
fn noop_policies_preserve_every_app_digest() {
    // App-level side of the Noop-equivalence claim, on all five benchmarks
    // under all three protocols: the digest must be unchanged, and every
    // counter of the mechanisms both surfaces disabled must be exactly
    // zero on both paths.  (Counter-for-counter equality between two runs
    // is a single-thread-only property — see
    // `noop_policies_are_byte_identical_to_disabled_flags`.)
    const DISABLED_MECHANISM_COUNTERS: [&str; 10] = [
        "hints_sent",
        "hinted_fetches_issued",
        "hinted_fetches_completed",
        "hinted_fetches_wasted",
        "hinted_fetches_reissued",
        "pages_migrated",
        "deferred_flushes",
        "batched_flushes",
        "fetch_overlap_cycles_hidden",
        "flush_overlap_cycles_hidden",
    ];
    let transport = TransportConfig::blocking();
    for bench in all_benchmarks() {
        for protocol in [
            ProtocolKind::JavaIc,
            ProtocolKind::JavaPf,
            ProtocolKind::JavaAd,
        ] {
            let (flag_digest, flag_report) = execute_with(bench.as_ref(), protocol, &transport);
            let (policy_digest, policy_report) =
                execute_with_policies(bench.as_ref(), protocol, &transport, noop_spec(protocol));
            // Pi's digest accumulates in monitor-acquisition order, so it
            // is only reproducible to float re-association; the others
            // agree exactly but share the check.
            let tolerance = flag_digest.abs().max(1.0) * 1e-9;
            assert!(
                (flag_digest - policy_digest).abs() <= tolerance,
                "{}/{}: flag digest {flag_digest} vs Noop-policy digest {policy_digest}",
                bench.name(),
                protocol.name()
            );
            for (label, report) in [("flags", &flag_report), ("policies", &policy_report)] {
                for (counter, value) in report.total_stats().fields() {
                    if DISABLED_MECHANISM_COUNTERS.contains(&counter) {
                        assert_eq!(
                            value,
                            0,
                            "{}/{} ({label}): disabled mechanism counter \
                             `{counter}` is non-zero",
                            bench.name(),
                            protocol.name()
                        );
                    }
                }
            }
        }
    }
}
