//! Chaos tests of the fault plane: seeded fault schedules injected at the
//! transport must never change what a program *computes*, only what it
//! costs — plus exact-counter accounting of the retry path and of quorum
//! re-election after a node kill.
//!
//! The digest property runs every app under every protocol with random (but
//! seeded, hence replayable) [`FaultSpec`] schedules that drop, delay and
//! duplicate frames, inject handler panics, and kill at most one node at a
//! virtual instant, with quorum replication armed so a killed home can be
//! re-elected.  Each faulted digest is compared against the fault-free run
//! of the same configuration.  The failing seed is part of every assertion
//! message; re-running a failure needs nothing but that seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hyperion_workspace::apps::common::Benchmark;
use hyperion_workspace::apps::{asp, barnes, jacobi, kvstore, pi, tsp};
use hyperion_workspace::dsm::{AdaptiveParams, DsmStore, DsmSystem};
use hyperion_workspace::model::{myrinet_200, ThreadClock, VTime};
use hyperion_workspace::pm2::{
    Cluster, FaultKill, FaultSpec, GlobalAddr, IsoAllocator, NodeId, RetryPolicy, TransportBackend,
};
use hyperion_workspace::prelude::*;
use hyperion_workspace::{HyperionConfig, ProtocolKind, TransportConfig};

/// Node count of the chaos app runs: enough that every protocol has real
/// remote traffic and a kill leaves a quorum of survivors.
const NODES: usize = 4;

/// Run `body` once per seed, labelling failures with the seed.
fn property(cases: u64, body: impl Fn(u64, &mut StdRng)) {
    for seed in 0..cases {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        body(seed, &mut rng);
    }
}

fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(pi::PiParams::quick()),
        Box::new(jacobi::JacobiParams::quick()),
        Box::new(barnes::BarnesParams::quick()),
        Box::new(tsp::TspParams::quick()),
        Box::new(asp::AspParams::quick()),
    ]
}

fn execute(
    bench: &dyn Benchmark,
    protocol: ProtocolKind,
    transport: &TransportConfig,
) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(myrinet_200())
        .nodes(NODES)
        .protocol(protocol)
        .transport(transport.clone())
        .build()
        .expect("valid chaos configuration");
    bench.execute(config)
}

/// A random — but valid — fault schedule: moderate drop/dup/panic rates, a
/// small frame delay, and a coin-flip node kill inside the window the quick
/// workloads actually execute in.
fn random_spec(rng: &mut StdRng) -> FaultSpec {
    let spec = FaultSpec {
        seed: rng.gen_range(0u64..u64::MAX),
        drop_ppm: rng.gen_range(0..30_000),
        drop_first: rng.gen_range(0..3),
        delay_ppm: rng.gen_range(0..20_000),
        delay_by: VTime::from_us(rng.gen_range(1..50)),
        dup_ppm: rng.gen_range(0..10_000),
        panic_ppm: rng.gen_range(0..5_000),
        kill: if rng.gen_range(0u32..2) == 1 {
            Some(FaultKill {
                node: rng.gen_range(0..NODES as u32),
                at: VTime::from_us(rng.gen_range(100..2_000)),
            })
        } else {
            None
        },
    };
    spec.validate(NODES).expect("generated spec is valid");
    spec
}

/// The tentpole chaos property: random seeded fault schedules across all
/// five apps and all three protocols preserve every digest.  Faults change
/// timing and traffic, never values — even when a home node is killed and
/// its pages are re-homed onto quorum survivors mid-run.
#[test]
fn seeded_fault_schedules_preserve_all_digests() {
    let protocols = [
        ProtocolKind::JavaIc,
        ProtocolKind::JavaPf,
        ProtocolKind::JavaAd,
    ];
    for bench in all_benchmarks() {
        for protocol in protocols {
            let (reference, _) = execute(bench.as_ref(), protocol, &TransportConfig::default());
            // Pi's global sum accumulates thread contributions in monitor
            // acquisition order, so its digest is only reproducible to
            // floating-point re-association; every other app is
            // order-independent.
            let tolerance = reference.abs().max(1.0) * 1e-9;
            property(3, |seed, rng| {
                let spec = random_spec(rng);
                let transport = TransportConfig {
                    fault: Some(spec),
                    replication: Some((2, 2)),
                    ..TransportConfig::default()
                };
                let (digest, report) = execute(bench.as_ref(), protocol, &transport);
                assert!(
                    (digest - reference).abs() <= tolerance,
                    "{} under {} diverged with seed {seed} / spec `{spec}`: \
                     fault-free {reference} vs faulted {digest}",
                    bench.name(),
                    protocol.name(),
                );
                let total = report.total_stats();
                if spec.kill.is_some() {
                    // At most one node died, and resynced pages imply a
                    // recorded failure (never the other way round).
                    assert!(total.nodes_failed <= 1, "seed {seed}: two nodes failed");
                    if total.pages_resynced > 0 {
                        assert_eq!(total.nodes_failed, 1, "seed {seed}");
                    }
                } else {
                    assert_eq!(total.nodes_failed, 0, "seed {seed}");
                    assert_eq!(total.pages_resynced, 0, "seed {seed}");
                }
            });
        }
    }
}

/// The serving tentpole's chaos property: a Zipf-skewed KV serving run with
/// a node kill in the middle of its request stream still completes every
/// operation and computes the same digest.  Unlike the digest sweep above,
/// the kill here is unconditional and aimed inside the serving window, and
/// the op count is checked exactly: recovery may re-route and retry, but it
/// may neither drop nor double-count a serving operation.
#[test]
fn kv_store_kill_schedules_preserve_digest_and_op_count() {
    let bench = kvstore::KvStoreParams::quick();
    let (reference, clean) = execute(&bench, ProtocolKind::JavaAd, &TransportConfig::default());
    let expected_ops = clean.total_stats().serving_ops;
    assert!(expected_ops > 0, "quick KV run recorded no serving ops");
    property(3, |seed, rng| {
        let mut spec = random_spec(rng);
        spec.kill = Some(FaultKill {
            node: rng.gen_range(0..NODES as u32),
            at: VTime::from_us(rng.gen_range(100..2_000)),
        });
        let transport = TransportConfig {
            fault: Some(spec),
            replication: Some((2, 2)),
            ..TransportConfig::default()
        };
        let (digest, report) = execute(&bench, ProtocolKind::JavaAd, &transport);
        assert!(
            (digest - reference).abs() <= reference.abs().max(1.0) * 1e-9,
            "KVStore diverged with seed {seed} / spec `{spec}`: \
             fault-free {reference} vs faulted {digest}",
        );
        let total = report.total_stats();
        assert_eq!(
            total.serving_ops, expected_ops,
            "seed {seed}: serving ops dropped or double-counted under faults"
        );
        assert!(total.nodes_failed <= 1, "seed {seed}: two nodes failed");
    });
}

/// Replaying the same spec must reproduce the fault counters exactly — the
/// whole point of seeded schedules (a chaos failure is re-runnable).
#[test]
fn identical_specs_replay_identical_fault_counters() {
    let spec = FaultSpec {
        seed: 99,
        drop_ppm: 25_000,
        dup_ppm: 10_000,
        ..FaultSpec::default()
    };
    let transport = TransportConfig {
        fault: Some(spec),
        ..TransportConfig::default()
    };
    let bench = jacobi::JacobiParams::quick();
    let (da, ra) = execute(&bench, ProtocolKind::JavaPf, &transport);
    let (db, rb) = execute(&bench, ProtocolKind::JavaPf, &transport);
    assert_eq!(da.to_bits(), db.to_bits());
    let (a, b) = (ra.total_stats(), rb.total_stats());
    assert_eq!(a.frames_dropped_injected, b.frames_dropped_injected);
    assert_eq!(a.rpc_retries, b.rpc_retries);
    assert_eq!(a.rpc_timeouts, b.rpc_timeouts);
}

// ----- exact-counter unit suite --------------------------------------------

/// A DSM system over a fault-injecting transport, with one page homed on
/// each node.
fn build_faulty_dsm(
    nodes: usize,
    spec: FaultSpec,
    transport: &TransportConfig,
) -> (Arc<DsmSystem>, Vec<GlobalAddr>) {
    let cluster = Cluster::for_backend_with_faults(
        myrinet_200().machine,
        nodes,
        TransportBackend::Sim,
        Some(spec),
    );
    let alloc = Arc::new(IsoAllocator::new(nodes));
    let store = DsmStore::new(Arc::clone(&alloc), nodes);
    let dsm = DsmSystem::with_config(
        cluster,
        store,
        ProtocolKind::JavaIc,
        &AdaptiveParams::default(),
        transport,
    );
    let addrs = (0..nodes)
        .map(|home| alloc.alloc_page_aligned(4, NodeId(home as u32)))
        .collect();
    (dsm, addrs)
}

/// `drop_first=2` drops exactly the first two remote frames: the demand
/// fetch retries twice under the backoff schedule and every retry is
/// accounted once — no more, no less.
#[test]
fn dropped_frames_are_retried_and_counted_exactly() {
    let spec = FaultSpec {
        seed: 5,
        drop_first: 2,
        ..FaultSpec::default()
    };
    let transport = TransportConfig::default();
    let (dsm, addrs) = build_faulty_dsm(2, spec, &transport);
    let mut clock0 = ThreadClock::new();
    dsm.put(NodeId(0), &mut clock0, addrs[0], 9);

    let mut clock1 = ThreadClock::new();
    assert_eq!(dsm.get(NodeId(1), &mut clock1, addrs[0]), 9);
    let stats = dsm.cluster().node_stats(NodeId(1));
    assert_eq!(stats.frames_dropped_injected, 2);
    assert_eq!(stats.rpc_timeouts, 2);
    assert_eq!(stats.rpc_retries, 2);
    // Each lost frame charged the full RPC timeout plus its backoff slot
    // (100us, then 200us) to the caller's virtual clock.
    let policy = RetryPolicy::default();
    let charged = policy.rpc_timeout + policy.rpc_timeout + policy.backoff(0) + policy.backoff(1);
    assert!(
        clock1.now() >= charged,
        "caller clock {:?} below the mandatory retry charge {charged:?}",
        clock1.now()
    );

    // The fault plane stays out of the way once the schedule is spent: a
    // second miss (after invalidation) completes first try.
    dsm.invalidate_cache(NodeId(1), &mut clock1);
    assert_eq!(dsm.get(NodeId(1), &mut clock1, addrs[0]), 9);
    let stats = dsm.cluster().node_stats(NodeId(1));
    assert_eq!(stats.rpc_retries, 2);
}

/// When every attempt is dropped, the retry budget runs out and the typed
/// failure surfaces through the single top-level die with service-name
/// context.
#[test]
fn exhausted_retry_budget_dies_with_service_context() {
    let spec = FaultSpec {
        seed: 6,
        drop_ppm: 1_000_000,
        ..FaultSpec::default()
    };
    let transport = TransportConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..TransportConfig::default()
    };
    let (dsm, addrs) = build_faulty_dsm(2, spec, &transport);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut clock = ThreadClock::new();
        dsm.get(NodeId(1), &mut clock, addrs[0])
    }))
    .expect_err("an all-drop schedule must exhaust the retry budget");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("dsm.page_fetch") && msg.contains("2 attempts"),
        "panic lost its service context: {msg}"
    );
    let stats = dsm.cluster().node_stats(NodeId(1));
    assert_eq!(stats.rpc_retries, 1);
    assert_eq!(stats.rpc_timeouts, 2);
}

/// Kill a home node and let a survivor trip over it: the store re-elects
/// the newest quorum replica as the page's home, re-routes, re-syncs, and
/// the read observes the last released write.  Counters are exact: one
/// failed node, at least the written page resynced, and the re-elected home
/// is the replica holder — not an arbitrary survivor.
#[test]
fn killed_home_is_reelected_from_the_newest_quorum_replica() {
    let spec = FaultSpec {
        seed: 7,
        kill: Some(FaultKill {
            node: 0,
            at: VTime::from_us(500),
        }),
        ..FaultSpec::default()
    };
    let transport = TransportConfig {
        replication: Some((2, 2)),
        ..TransportConfig::default()
    };
    let (dsm, addrs) = build_faulty_dsm(3, spec, &transport);
    let page = addrs[0].page();

    // Node 0 (the home) seeds the page; node 1 reads it — becoming a
    // replica holder — then writes and releases, which quorum-stamps its
    // replica at version 1.  All of this happens before the kill instant.
    let mut clock0 = ThreadClock::new();
    dsm.put(NodeId(0), &mut clock0, addrs[0], 7);
    let mut clock1 = ThreadClock::new();
    assert_eq!(dsm.get(NodeId(1), &mut clock1, addrs[0]), 7);
    dsm.put(NodeId(1), &mut clock1, addrs[0], 42);
    dsm.update_main_memory(NodeId(1), &mut clock1);
    assert!(
        clock1.now() < VTime::from_us(500),
        "workload outran the kill"
    );

    // Node 2 arrives after the kill instant: its fetch hits the dead home,
    // triggers recovery, and completes against the re-elected home.
    let mut clock2 = ThreadClock::new();
    clock2.advance(VTime::from_us(1_000));
    assert_eq!(dsm.get(NodeId(2), &mut clock2, addrs[0]), 42);

    let stats = dsm.cluster().node_stats(NodeId(2));
    assert_eq!(stats.nodes_failed, 1);
    assert!(
        stats.pages_resynced >= 1,
        "recovery resynced no pages: {stats:?}"
    );
    assert_eq!(
        dsm.store().home_of(page),
        NodeId(1),
        "the quorum holder must win the election"
    );

    // The re-homed page keeps working: node 2 writes through the new home
    // and node 1 (now the home) observes the value in main memory.
    dsm.put(NodeId(2), &mut clock2, addrs[0], 1234);
    dsm.update_main_memory(NodeId(2), &mut clock2);
    let mut clock1b = ThreadClock::new();
    clock1b.advance(VTime::from_us(2_000));
    dsm.invalidate_cache(NodeId(1), &mut clock1b);
    assert_eq!(dsm.get(NodeId(1), &mut clock1b, addrs[0]), 1234);

    // Recovery ran once; the second observer re-routed without repeating it.
    let mut clock1c = ThreadClock::new();
    clock1c.advance(VTime::from_us(2_000));
    assert_eq!(dsm.get(NodeId(1), &mut clock1c, addrs[0]), 1234);
    let total = dsm.cluster().node_stats(NodeId(1));
    assert_eq!(total.nodes_failed, 0, "only the first observer accounts");
}

/// A page never replicated still recovers: the election falls back to the
/// lowest-id live node, which re-syncs from the authoritative frame.
#[test]
fn unreplicated_pages_fall_back_to_the_lowest_live_node() {
    let spec = FaultSpec {
        seed: 8,
        kill: Some(FaultKill {
            node: 1,
            at: VTime::ZERO,
        }),
        ..FaultSpec::default()
    };
    let transport = TransportConfig {
        replication: Some((2, 2)),
        ..TransportConfig::default()
    };
    let (dsm, addrs) = build_faulty_dsm(3, spec, &transport);
    let page = addrs[1].page();

    // Node 1 seeds its own page locally (home writes need no RPC), then is
    // dead to everyone from virtual time zero.
    let mut clock1 = ThreadClock::new();
    dsm.put(NodeId(1), &mut clock1, addrs[1], 77);

    let mut clock2 = ThreadClock::new();
    assert_eq!(dsm.get(NodeId(2), &mut clock2, addrs[1]), 77);
    assert_eq!(
        dsm.store().home_of(page),
        NodeId(0),
        "with no replicas the lowest live node inherits the page"
    );
    let stats = dsm.cluster().node_stats(NodeId(2));
    assert_eq!(stats.nodes_failed, 1);
    assert!(stats.pages_resynced >= 1);
}
