//! Digest invariance of the two-level home hierarchy.
//!
//! Grouping nodes and routing cross-group fetch/diff traffic through group
//! leaders (`dsm::combine`) is purely a *cost* mechanism: the relay applies
//! the very same memory effects as a direct home RPC — combining may only
//! change what an exchange is modeled to cost, never what it moves.  These
//! tests pin that claim where the hierarchy is actually meant to run — 16
//! and 64 nodes, far beyond the paper's 12-node cluster:
//!
//! 1. Every app (the paper's five plus the two serving workloads) under
//!    every protocol computes the same answer grouped as flat, at both 16
//!    and 64 nodes.
//! 2. A grouped run at 64 nodes really exercises the relay: the combining
//!    counters are live and the busiest node serves fewer RPCs than the
//!    flat hot home.
//! 3. Killing a group *leader* mid-run degrades its group to direct home
//!    RPCs and re-elects the leader's pages from quorum replicas — the
//!    digest still matches the fault-free flat reference.
//!
//! Digest comparisons use the suite-wide relative tolerance of 1e-9: most
//! apps reproduce bit-for-bit, but Pi's digest accumulates in
//! monitor-acquisition order and grouping shifts the virtual-time schedule.

use hyperion_workspace::apps::common::Benchmark;
use hyperion_workspace::apps::{asp, barnes, graph, jacobi, kvstore, pi, tsp};
use hyperion_workspace::model::scaled_cluster;
use hyperion_workspace::pm2::{FaultKill, FaultSpec};
use hyperion_workspace::prelude::*;
use hyperion_workspace::{HyperionConfig, ProtocolKind, TransportConfig};

/// The node counts the hierarchy is built for (the paper's clusters stop at
/// 12) and the group size used at each: 4 nodes per group at 16 nodes, 8 at
/// 64, so both levels of the tree have real fan-in.
const SCALES: [(usize, usize); 2] = [(16, 4), (64, 8)];

fn execute(
    bench: &dyn Benchmark,
    protocol: ProtocolKind,
    nodes: usize,
    transport: &TransportConfig,
) -> (f64, RunReport) {
    let config = HyperionConfig::builder()
        .cluster(scaled_cluster(&myrinet_200(), nodes))
        .nodes(nodes)
        .protocol(protocol)
        .transport(transport.clone())
        .pacing_window(None)
        .build()
        .expect("valid scaling configuration");
    bench.execute(config)
}

fn grouped(group_size: usize) -> TransportConfig {
    TransportConfig {
        group_size,
        ..TransportConfig::default()
    }
}

/// Property 1 for one app: grouped and flat digests agree at every scale
/// under every protocol.
fn assert_digest_invariant(bench: &dyn Benchmark) {
    for (nodes, group_size) in SCALES {
        for protocol in ProtocolKind::all_extended() {
            let (flat, _) = execute(bench, protocol, nodes, &TransportConfig::default());
            let (hier, report) = execute(bench, protocol, nodes, &grouped(group_size));
            let tolerance = flat.abs().max(1.0) * 1e-9;
            assert!(
                (flat - hier).abs() <= tolerance,
                "{}/{} @ {nodes} nodes (groups of {group_size}): grouped digest {hier} \
                 diverged from flat digest {flat}",
                bench.name(),
                protocol.name(),
            );
            // The run must actually have used the hierarchy: cross-group
            // traffic exists at these scales for every app, so some member
            // relayed through its leader.
            let total = report.total_stats();
            assert!(
                total.group_relay_cycles > 0,
                "{}/{} @ {nodes} nodes: no upstream relay was ever opened",
                bench.name(),
                protocol.name(),
            );
        }
    }
}

#[test]
fn pi_digest_is_topology_invariant() {
    assert_digest_invariant(&pi::PiParams::quick());
}

#[test]
fn jacobi_digest_is_topology_invariant() {
    assert_digest_invariant(&jacobi::JacobiParams::quick());
}

#[test]
fn barnes_digest_is_topology_invariant() {
    assert_digest_invariant(&barnes::BarnesParams::quick());
}

#[test]
fn tsp_digest_is_topology_invariant() {
    assert_digest_invariant(&tsp::TspParams::quick());
}

#[test]
fn asp_digest_is_topology_invariant() {
    assert_digest_invariant(&asp::AspParams::quick());
}

#[test]
fn kv_store_digest_is_topology_invariant() {
    assert_digest_invariant(&kvstore::KvStoreParams::quick());
}

#[test]
fn pagerank_digest_is_topology_invariant() {
    assert_digest_invariant(&graph::PageRankParams::quick());
}

/// Property 2: at 64 nodes the hierarchy actually combines — the fetch and
/// diff combining counters are live on the barrier-heavy Jacobi exchange,
/// and the busiest node (the flat run's hot home) serves strictly fewer
/// RPCs once its arrivals are spread over the group leaders.
#[test]
fn grouped_jacobi_combines_and_flattens_the_hot_home() {
    let bench = jacobi::JacobiParams::quick();
    let (nodes, group_size) = (64, 8);
    let (_, flat) = execute(
        &bench,
        ProtocolKind::JavaPf,
        nodes,
        &TransportConfig::default(),
    );
    let (_, hier) = execute(&bench, ProtocolKind::JavaPf, nodes, &grouped(group_size));

    let peak = |report: &RunReport| {
        report
            .node_stats
            .iter()
            .map(|s| s.rpc_served)
            .max()
            .unwrap_or(0)
    };
    let total = hier.total_stats();
    assert!(
        total.combined_diff_batches > 0,
        "no diff batch was ever combined at the leaders"
    );
    assert!(
        total.combined_fetches > 0,
        "no page fetch was ever served from a leader's unchanged-version window"
    );
    assert!(
        peak(&hier) < peak(&flat),
        "the hot home serves as many RPCs grouped ({}) as flat ({})",
        peak(&hier),
        peak(&flat),
    );
}

/// Property 3: killing a group *leader* mid-run must not change the answer.
/// Members of the dead leader's group fail over to direct home RPCs
/// (`mark_group_degraded`), the leader's pages are re-elected from quorum
/// replicas, and the digest still matches the fault-free flat reference.
#[test]
fn killing_a_group_leader_degrades_to_direct_rpcs() {
    let bench = jacobi::JacobiParams::quick();
    let (nodes, group_size) = (8, 4);
    let (reference, _) = execute(
        &bench,
        ProtocolKind::JavaPf,
        nodes,
        &TransportConfig::default(),
    );

    // Node 4 leads the second group {4..8}.  Kill it mid-exchange with
    // quorum replication armed so its pages can be re-homed.
    let transport = TransportConfig {
        group_size,
        replication: Some((2, 2)),
        fault: Some(FaultSpec {
            kill: Some(FaultKill {
                node: 4,
                at: VTime::from_us(300),
            }),
            ..FaultSpec::default()
        }),
        ..TransportConfig::default()
    };
    let (digest, report) = execute(&bench, ProtocolKind::JavaPf, nodes, &transport);
    let tolerance = reference.abs().max(1.0) * 1e-9;
    assert!(
        (reference - digest).abs() <= tolerance,
        "leader kill changed the answer: {digest} vs fault-free {reference}"
    );
    let total = report.total_stats();
    assert!(
        total.nodes_failed > 0,
        "the kill schedule never fired — move the kill instant inside the run"
    );
    assert!(
        total.pages_resynced > 0,
        "no page was re-elected from the dead leader's replicas"
    );
}
